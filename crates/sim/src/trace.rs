//! The workload interface: how benchmarks describe their threads' work.
//!
//! A workload is a sequence of kernels; a kernel is a grid of thread
//! blocks (TBs); each TB contributes `warps_per_block` warps; each warp is
//! an in-order stream of [`Instruction`]s produced lazily by a
//! [`WarpProgram`] (so billion-instruction workloads never materialize in
//! memory). `valley-workloads` implements these traits for the paper's 16
//! benchmarks; the simulator and the entropy analyzer both consume them.

/// One warp-level instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Instruction {
    /// A compute instruction chain: the warp cannot issue its next
    /// instruction for `cycles` core cycles (models dependent ALU work;
    /// other warps hide the latency).
    Compute {
        /// Stall cycles before the warp's next instruction.
        cycles: u32,
    },
    /// A warp-wide load: one address per active lane. The warp blocks
    /// until every coalesced transaction returns.
    Load(LaneAddrs),
    /// A warp-wide store: one address per active lane. Stores are
    /// fire-and-forget (write-through), so the warp continues immediately,
    /// but the transactions still consume L1/NoC/DRAM bandwidth.
    Store(LaneAddrs),
}

/// The per-lane byte addresses of one memory instruction (up to the warp
/// size; inactive lanes are simply absent).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct LaneAddrs(pub Vec<u64>);

impl LaneAddrs {
    /// A fully-coalesced access: `lanes` consecutive `elem_bytes` elements
    /// starting at `base` (the common `a[tid]` pattern).
    pub fn contiguous(base: u64, lanes: usize, elem_bytes: u64) -> Self {
        LaneAddrs((0..lanes as u64).map(|l| base + l * elem_bytes).collect())
    }

    /// A strided access: lane `l` touches `base + l * stride_bytes`
    /// (column-major array walks, the paper's problem pattern).
    pub fn strided(base: u64, lanes: usize, stride_bytes: u64) -> Self {
        LaneAddrs((0..lanes as u64).map(|l| base + l * stride_bytes).collect())
    }

    /// Number of active lanes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether no lanes are active.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// A lazily-generated in-order instruction stream for one warp.
///
/// `Send` because the phase-parallel engine (see [`crate::Parallelism`])
/// moves resident warps to worker threads; programs are plain iterator
/// state in every implementation.
pub trait WarpProgram: Send {
    /// Produces the warp's next instruction, or `None` when the warp has
    /// retired.
    fn next_instruction(&mut self) -> Option<Instruction>;
}

/// A kernel launch: a grid of TBs with identical per-warp structure.
///
/// `Send` because the batched engine (see [`crate::BatchSim`]) moves
/// whole lanes — simulator plus the resident kernel — to worker threads
/// between epoch barriers; sources are plain data in every
/// implementation.
pub trait KernelSource: Send {
    /// Kernel name (for reports).
    fn name(&self) -> String;

    /// Number of thread blocks in the grid.
    fn num_thread_blocks(&self) -> u64;

    /// Warps per thread block (TB size / 32).
    fn warps_per_block(&self) -> usize;

    /// Creates the instruction stream of warp `warp` of TB `tb`.
    ///
    /// Implementations must be deterministic: calling twice with the same
    /// coordinates yields identical streams (the entropy analyzer and the
    /// simulator both walk the trace).
    fn warp_program(&self, tb: u64, warp: usize) -> Box<dyn WarpProgram>;
}

/// A complete workload: an ordered list of kernel launches.
///
/// `Send` for the same reason as [`KernelSource`]: a batched lane owns
/// its workload and may tick on any worker thread.
pub trait WorkloadSource: Send {
    /// Benchmark name (e.g. "MT").
    fn name(&self) -> String;

    /// Number of kernel launches.
    fn num_kernels(&self) -> usize;

    /// Creates kernel `index` (0-based launch order).
    fn kernel(&self, index: usize) -> Box<dyn KernelSource>;
}

/// Convenience: iterate a kernel's per-TB *coalesced* request addresses,
/// applying `line_bytes` coalescing exactly like the simulator's LSU.
/// This is what the window-based entropy metric consumes (it analyzes the
/// memory requests that reach the memory system, i.e. post-coalescing).
pub fn tb_request_addresses(kernel: &dyn KernelSource, tb: u64, line_bytes: u64) -> Vec<u64> {
    let mut out = Vec::new();
    for w in 0..kernel.warps_per_block() {
        let mut prog = kernel.warp_program(tb, w);
        while let Some(inst) = prog.next_instruction() {
            match inst {
                Instruction::Load(a) | Instruction::Store(a) => {
                    out.extend(crate::coalesce::coalesce(&a, line_bytes));
                }
                Instruction::Compute { .. } => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_lane_addrs() {
        let a = LaneAddrs::contiguous(0x100, 4, 4);
        assert_eq!(a.0, vec![0x100, 0x104, 0x108, 0x10c]);
        assert_eq!(a.len(), 4);
        assert!(!a.is_empty());
    }

    #[test]
    fn strided_lane_addrs() {
        let a = LaneAddrs::strided(0, 3, 0x1000);
        assert_eq!(a.0, vec![0, 0x1000, 0x2000]);
    }

    struct OneLoad(bool);
    impl WarpProgram for OneLoad {
        fn next_instruction(&mut self) -> Option<Instruction> {
            if self.0 {
                self.0 = false;
                Some(Instruction::Load(LaneAddrs::contiguous(0, 32, 4)))
            } else {
                None
            }
        }
    }
    struct OneKernel;
    impl KernelSource for OneKernel {
        fn name(&self) -> String {
            "k".into()
        }
        fn num_thread_blocks(&self) -> u64 {
            2
        }
        fn warps_per_block(&self) -> usize {
            1
        }
        fn warp_program(&self, _tb: u64, _warp: usize) -> Box<dyn WarpProgram> {
            Box::new(OneLoad(true))
        }
    }

    #[test]
    fn tb_addresses_are_coalesced() {
        // 32 lanes x 4 B = 128 B = exactly one transaction.
        let addrs = tb_request_addresses(&OneKernel, 0, 128);
        assert_eq!(addrs, vec![0]);
    }
}
