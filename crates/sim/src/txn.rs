//! The memory-transaction table: one record per coalesced transaction,
//! addressed by a monotonically-increasing token.
//!
//! The sequential engine uses a single table whose ids are plain indices.
//! The phase-parallel engine gives every shard its own table under a
//! distinct *namespace*: the shard index lives in the high bits of every
//! id, so any thread can tell which shard's arena owns a token without
//! consulting shared state, and shards allocate concurrently without
//! synchronization. Records never cross shards by reference — the
//! epoch coordinator copies a transaction into the destination shard's
//! arena when it crosses the NoC (see `crate::par`), so workers only ever
//! touch their own arena.

use valley_core::PhysAddr;

/// Sentinel warp index for transactions not tied to a warp (stores).
pub(crate) const NO_WARP: u32 = u32::MAX;

/// Bit position of the namespace (shard) tag within a transaction id.
pub(crate) const NS_SHIFT: u32 = 48;

/// One coalesced memory transaction.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Txn {
    /// Originating SM.
    pub sm: u32,
    /// Originating warp slot, or [`NO_WARP`] for stores.
    pub warp: u32,
    /// Whether this is a store.
    pub is_store: bool,
    /// Original (pre-mapping) line-aligned address — the cache/MSHR key.
    pub line: u64,
    /// Mapped address — routes the LLC slice, DRAM channel, bank and row.
    pub mapped: PhysAddr,
    /// LLC slice serving this transaction (derived from `mapped`).
    pub slice: u16,
    /// Lazily-cached DRAM coordinates of `mapped` (controller, bank,
    /// row), decoded once at the LLC's DRAM hand-off so back-pressure
    /// retries don't re-decode every cycle.
    pub coords: Option<(u32, u32, u32)>,
    /// The id this record answers to at its *origin* shard. Equal to the
    /// record's own id for original allocations; for the parallel
    /// engine's cross-shard copies it names the SM-side record that
    /// replies must be routed back to.
    pub origin: u64,
}

/// Append-only transaction table; ids are `namespace << NS_SHIFT | index`.
#[derive(Debug, Default)]
pub(crate) struct TxnTable {
    txns: Vec<Txn>,
    /// Namespace tag (shard index), already shifted into position.
    ns_tag: u64,
    /// Original (non-copy) allocations — the `memory_transactions`
    /// count. Equals `txns.len()` except in parallel-engine arenas that
    /// also hold cross-shard copies.
    originals: u64,
}

impl TxnTable {
    pub(crate) fn new() -> Self {
        TxnTable {
            txns: Vec::with_capacity(1 << 16),
            ns_tag: 0,
            originals: 0,
        }
    }

    /// A table whose ids carry shard namespace `ns` in their high bits.
    pub(crate) fn with_namespace(ns: u32) -> Self {
        TxnTable {
            txns: Vec::with_capacity(1 << 12),
            ns_tag: u64::from(ns) << NS_SHIFT,
            originals: 0,
        }
    }

    /// The namespace (shard) a token belongs to.
    #[inline]
    pub(crate) fn namespace_of(id: u64) -> usize {
        (id >> NS_SHIFT) as usize
    }

    pub(crate) fn alloc(
        &mut self,
        sm: u32,
        warp: u32,
        is_store: bool,
        line: u64,
        mapped: PhysAddr,
        slice: u16,
    ) -> u64 {
        let id = self.ns_tag | self.txns.len() as u64;
        // Arena growth is amortized pool growth, not per-tick work;
        // declare the reallocation to the allocation audit.
        let _audit_pause =
            (self.txns.len() == self.txns.capacity()).then(crate::alloc_audit::pause);
        self.txns.push(Txn {
            sm,
            warp,
            is_store,
            line,
            mapped,
            slice,
            coords: None,
            origin: id,
        });
        self.originals += 1;
        id
    }

    /// Copies a foreign record into this arena (parallel engine only):
    /// the copy remembers `origin` — the id of the source record at its
    /// own shard — and does not count toward [`TxnTable::len`].
    pub(crate) fn alloc_copy(&mut self, mut txn: Txn, origin: u64) -> u64 {
        let id = self.ns_tag | self.txns.len() as u64;
        let _audit_pause =
            (self.txns.len() == self.txns.capacity()).then(crate::alloc_audit::pause);
        txn.origin = origin;
        self.txns.push(txn);
        id
    }

    #[inline]
    pub(crate) fn get(&self, id: u64) -> &Txn {
        debug_assert_eq!(id & !((1 << NS_SHIFT) - 1), self.ns_tag, "foreign token");
        &self.txns[(id & ((1 << NS_SHIFT) - 1)) as usize]
    }

    #[inline]
    pub(crate) fn get_mut(&mut self, id: u64) -> &mut Txn {
        debug_assert_eq!(id & !((1 << NS_SHIFT) - 1), self.ns_tag, "foreign token");
        &mut self.txns[(id & ((1 << NS_SHIFT) - 1)) as usize]
    }

    /// Original (non-copy) allocations — the report's transaction count.
    pub(crate) fn len(&self) -> u64 {
        self.originals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_get() {
        let mut t = TxnTable::new();
        let a = t.alloc(1, 2, false, 0x100, PhysAddr::new(0x900), 3);
        let b = t.alloc(1, NO_WARP, true, 0x200, PhysAddr::new(0xa00), 0);
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(t.get(a).line, 0x100);
        assert!(t.get(b).is_store);
        assert_eq!(t.get(b).warp, NO_WARP);
        assert_eq!(t.get(a).origin, a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn namespaced_ids_carry_their_shard() {
        let mut t = TxnTable::with_namespace(5);
        let a = t.alloc(0, 0, false, 0x40, PhysAddr::new(0x40), 1);
        assert_eq!(TxnTable::namespace_of(a), 5);
        assert_eq!(t.get(a).line, 0x40);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn copies_do_not_count_as_transactions() {
        let mut origin = TxnTable::with_namespace(0);
        let o = origin.alloc(7, 3, false, 0x80, PhysAddr::new(0x80), 2);
        let mut dest = TxnTable::with_namespace(1);
        let c = dest.alloc_copy(*origin.get(o), o);
        assert_eq!(TxnTable::namespace_of(c), 1);
        assert_eq!(dest.get(c).origin, o);
        assert_eq!(dest.get(c).sm, 7);
        assert_eq!(dest.len(), 0, "copies are not new transactions");
        assert_eq!(origin.len(), 1);
    }
}
