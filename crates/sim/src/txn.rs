//! The global memory-transaction table: one record per coalesced
//! transaction, addressed by a monotonically-increasing token.

use valley_core::PhysAddr;

/// Sentinel warp index for transactions not tied to a warp (stores).
pub(crate) const NO_WARP: u32 = u32::MAX;

/// One coalesced memory transaction.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Txn {
    /// Originating SM.
    pub sm: u32,
    /// Originating warp slot, or [`NO_WARP`] for stores.
    pub warp: u32,
    /// Whether this is a store.
    pub is_store: bool,
    /// Original (pre-mapping) line-aligned address — the cache/MSHR key.
    pub line: u64,
    /// Mapped address — routes the LLC slice, DRAM channel, bank and row.
    pub mapped: PhysAddr,
    /// LLC slice serving this transaction (derived from `mapped`).
    pub slice: u16,
    /// Lazily-cached DRAM coordinates of `mapped` (controller, bank,
    /// row), decoded once at the LLC's DRAM hand-off so back-pressure
    /// retries don't re-decode every cycle.
    pub coords: Option<(u32, u32, u32)>,
}

/// Append-only transaction table; ids are indices.
#[derive(Debug, Default)]
pub(crate) struct TxnTable {
    txns: Vec<Txn>,
}

impl TxnTable {
    pub(crate) fn new() -> Self {
        TxnTable {
            txns: Vec::with_capacity(1 << 16),
        }
    }

    pub(crate) fn alloc(
        &mut self,
        sm: u32,
        warp: u32,
        is_store: bool,
        line: u64,
        mapped: PhysAddr,
        slice: u16,
    ) -> u64 {
        let id = self.txns.len() as u64;
        self.txns.push(Txn {
            sm,
            warp,
            is_store,
            line,
            mapped,
            slice,
            coords: None,
        });
        id
    }

    #[inline]
    pub(crate) fn get(&self, id: u64) -> &Txn {
        &self.txns[id as usize]
    }

    #[inline]
    pub(crate) fn get_mut(&mut self, id: u64) -> &mut Txn {
        &mut self.txns[id as usize]
    }

    pub(crate) fn len(&self) -> u64 {
        self.txns.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_get() {
        let mut t = TxnTable::new();
        let a = t.alloc(1, 2, false, 0x100, PhysAddr::new(0x900), 3);
        let b = t.alloc(1, NO_WARP, true, 0x200, PhysAddr::new(0xa00), 0);
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(t.get(a).line, 0x100);
        assert!(t.get(b).is_store);
        assert_eq!(t.get(b).warp, NO_WARP);
        assert_eq!(t.len(), 2);
    }
}
