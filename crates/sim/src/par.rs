//! The phase-parallel tick engine: sharded SM/channel ticking with an
//! epoch-barrier merge, **bit-identical** to the sequential evented loop
//! for every configuration and shard count.
//!
//! # Decomposition
//!
//! The machine factorizes along the NoC, whose crossbar has no
//! cross-port coupling (each output port is an independent FIFO with its
//! own calendar):
//!
//! * **Memory groups** — an LLC slice together with the DRAM channels it
//!   exclusively serves (derived from the slice-routing function, so a
//!   slice's DRAM hand-offs and completions never leave its group).
//! * **Shards** — a contiguous range of SMs plus a contiguous range of
//!   memory groups, each with its own transaction arena (namespaced
//!   ids), its own sub-crossbars (the request-net ports of its slices,
//!   the reply-net ports of its SMs) and its own [`DramSystem`] subset.
//!
//! Within an epoch every shard ticks only shard-local state. The only
//! cross-shard traffic — NoC packet injection — is buffered, tagged with
//! its (cycle, phase, unit) coordinates, and applied by the coordinator
//! at the epoch barrier in exactly the order the sequential loop would
//! have injected (unit = global channel index for DRAM-completion
//! replies, global slice index for tick replies, global SM index for
//! requests). A packet injected at NoC cycle `k` cannot move a flit
//! before `k + router_latency`, so barrier-applied injections are never
//! late as long as no epoch spans more than `router_latency` NoC cycles.
//!
//! # Safe horizon
//!
//! An epoch may span multiple cycles only while the TB scheduler is
//! provably inert and no SM can act. The bound is assembled from the
//! **wake-gate subsystem** (see `crate::wake`) instead of global
//! minima over raw event caches:
//!
//! * **SM gates** — each shard keeps a [`WakeGate`] over its SMs; the
//!   epoch must end before the earliest per-shard gate.
//! * **Reply deliveries** — a reply in flight on port *p* wakes exactly
//!   the SM behind *p*, and it does so at the packet's *completion*
//!   cycle ([`Crossbar::port_delivery_at`]), so that is when it clamps
//!   the (global) epoch — not at its next flit movement. A streaming
//!   5-flit reply therefore no longer pins the horizon at one cycle —
//!   the regime where the old `reply_next` movement-minimum collapsed
//!   every memory-saturated phase to lockstep.
//! * **Emission gate** — in-epoch reply *emissions* are buffered and
//!   barrier-injected, so they must not be due to move a flit before
//!   the epoch ends. Emissions are bounded below by the per-channel
//!   DRAM minima (completion replies), the slices' in-flight hit heads,
//!   and — for work enqueued inside the epoch — the DRAM minimum
//!   completion latency / LLC hit latency; the epoch may extend until
//!   `router_latency` NoC cycles past the first emission-capable
//!   cycle's stamp (previously: past the epoch's *start*).
//!
//! Any cycle with possible SM activity runs as a one-cycle epoch whose
//! barrier performs injection, TB scheduling and sampling exactly where
//! the sequential loop would. Epoch lengths are recorded in the
//! report's [`EpochHist`] so the multi-cycle behavior is observable.
//!
//! # Determinism
//!
//! Thread count is pure transport: shards are ticked either inline by
//! the coordinator or by parked worker threads, and every merge is
//! ordered by the tags above, never by thread finish order. The
//! equivalence battery (`tests/event_driven_equivalence.rs` and
//! `crates/sim/tests/parallel_equivalence.rs`) pins dense ≡ evented ≡
//! parallel(2,3,4,7) across schemes, configs and seeds.

use crate::config::GpuConfig;
use crate::gpu::{
    build_report, domain_ticks, GpuSim, ReportParts, SmPool, TbScheduler, METRIC_SAMPLE_INTERVAL,
};
use crate::llc::LlcSlice;
use crate::metrics::{EpochHist, ParallelismIntegrator, SimReport};
use crate::sm::{Sm, SmOutbound};
use crate::trace::KernelSource;
use crate::txn::TxnTable;
use crate::wake::WakeGate;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use valley_core::{AddressMapper, DramAddressMap, PhysAddr};
use valley_dram::{DramCompletion, DramSystem};
use valley_noc::{Crossbar, Delivery, NocStats, Packet};

/// Hard cap on epoch length in core cycles (the emission-gate bound is
/// usually tighter; this only bounds the coordinator's scratch buffers).
const EPOCH_CAP: u64 = 64;

/// How many busy-wait probes the epoch barrier performs before parking
/// on the Condvar. One-cycle epochs turn around in well under a
/// microsecond of shard work, so two futex round trips per epoch used to
/// dominate the barrier; a bounded spin absorbs that common case while
/// the parked path still yields the CPU on oversubscribed boxes (more
/// workers than cores), where spinning would steal cycles from the very
/// shard being waited on.
const SPIN_ITERS: u32 = 1 << 12;

/// A reply produced inside an epoch, tagged with the coordinates that
/// define its sequential injection order.
#[derive(Clone, Copy, Debug)]
struct TaggedReply {
    cycle: u64,
    /// 0 = DRAM-completion phase, 1 = slice-tick phase (the sequential
    /// loop drains completion replies first).
    phase: u8,
    /// Global channel index (phase 0) or global slice index (phase 1).
    unit: u32,
    /// Slice-arena transaction id.
    txn: u64,
}

/// A request produced inside an epoch (SM outbound), tagged likewise.
#[derive(Clone, Copy, Debug)]
struct TaggedReq {
    cycle: u64,
    /// Global SM index.
    sm: u32,
    /// SM-arena (origin) transaction id.
    txn: u64,
    flits: u32,
}

/// One metric sample's per-shard contribution (summed at the barrier).
#[derive(Clone, Copy, Debug, Default)]
struct SampleParts {
    busy_slices: u64,
    busy_channels: u64,
    bank_sum: u64,
}

/// Read-only state shared by the coordinator and every worker.
struct Env<'a> {
    cfg: &'a GpuConfig,
    mapper: &'a AddressMapper,
    map: &'a (dyn DramAddressMap + Send + Sync),
    llc_slices: usize,
    noc_per_core: f64,
    dram_per_core: f64,
}

/// The epoch descriptor the coordinator publishes to the workers: the
/// cycle window plus the clock-accumulator state at its start (each
/// shard replays the identical accumulator arithmetic locally).
#[derive(Clone, Copy, Debug, Default)]
struct Plan {
    t_start: u64,
    t_end: u64,
    noc_acc: f64,
    noc_cycle: u64,
    dram_acc: f64,
    dram_cycle: u64,
}

/// One shard: a contiguous range of SMs and of memory groups, with all
/// the state their ticking touches.
struct Shard {
    /// Global ids of the owned SMs (contiguous, ascending).
    sm_ids: Vec<u32>,
    /// Global ids of the owned LLC slices (ascending).
    slice_ids: Vec<u16>,
    /// Global slice id → local index (usize::MAX = foreign).
    slice_local: Vec<usize>,
    sms: Vec<Sm>,
    slices: Vec<LlcSlice>,
    /// The owned DRAM channels (`None` for shards with no memory group).
    dram: Option<DramSystem>,
    /// Request-net output ports of the owned slices (dst = local index).
    req_ports: Crossbar,
    /// Reply-net output ports of the owned SMs (dst = local index).
    reply_ports: Crossbar,
    /// This shard's transaction arena (ids carry the shard namespace).
    txns: TxnTable,
    /// Wake gates over this shard's SM and slice populations (see
    /// `crate::wake`): rebuilt by the walks below, clamped by the
    /// deliveries/fills above them, exact at every epoch boundary —
    /// the shard-local half of the wake-gate subsystem
    /// (behavior-neutral: every component still self-gates). Being per
    /// *shard*, instead of the global minimum the coordinator used to
    /// fold them into, is what lets the safe horizon treat each
    /// shard's pending wakes separately.
    wake_sms: WakeGate,
    wake_slices: WakeGate,
    /// Whether any SM ticked or received a reply this epoch.
    sm_activity: bool,
    // Epoch outboxes, drained by the coordinator at the barrier.
    replies_out: Vec<TaggedReply>,
    reqs_out: Vec<TaggedReq>,
    samples_out: Vec<SampleParts>,
    // Reusable scratch buffers.
    deliveries: Vec<Delivery>,
    completions: Vec<DramCompletion>,
    replies_scratch: Vec<u64>,
    outbound_scratch: Vec<SmOutbound>,
}

impl Shard {
    /// Ticks this shard through the epoch `plan`, touching only
    /// shard-local state; cross-shard traffic lands in the outboxes.
    fn run_epoch(&mut self, plan: &Plan, env: &Env<'_>) {
        let mut noc_acc = plan.noc_acc;
        let mut noc_cycle = plan.noc_cycle;
        let mut dram_acc = plan.dram_acc;
        let mut dram_cycle = plan.dram_cycle;
        let map = env.map;
        let llc_slices = env.llc_slices;
        let slicer = move |addr: PhysAddr| GpuSim::slice_of(map, llc_slices, addr);

        for cycle in plan.t_start..plan.t_end {
            // ---- NoC clock domain ----
            noc_acc += env.noc_per_core;
            while noc_acc >= 1.0 {
                noc_acc -= 1.0;
                self.deliveries.clear();
                self.req_ports.tick_evented(noc_cycle, &mut self.deliveries);
                for d in &self.deliveries {
                    self.slices[d.dst].deliver(d.payload);
                    self.wake_slices.wake_now();
                }
                self.deliveries.clear();
                self.reply_ports
                    .tick_evented(noc_cycle, &mut self.deliveries);
                for d in &self.deliveries {
                    self.sms[d.dst].on_reply(d.payload, &self.txns, cycle);
                    self.sm_activity = true;
                    // `on_reply` forces a tick of this SM at `cycle`.
                    self.wake_sms.wake_at(cycle);
                }
                noc_cycle += 1;
            }

            // ---- DRAM clock domain ----
            dram_acc += env.dram_per_core;
            while dram_acc >= 1.0 {
                dram_acc -= 1.0;
                if let Some(dram) = &mut self.dram {
                    self.completions.clear();
                    dram.tick_evented(dram_cycle, &mut self.completions);
                    for c in &self.completions {
                        let t = *self.txns.get(c.id);
                        if !t.is_store {
                            let ctrl = t.coords.expect("enqueued txns were decoded").0;
                            let li = self.slice_local[t.slice as usize];
                            self.replies_scratch.clear();
                            self.slices[li].on_dram_completion(
                                c.id,
                                cycle,
                                &mut self.txns,
                                env.mapper,
                                &mut self.replies_scratch,
                            );
                            for &txn in &self.replies_scratch {
                                self.replies_out.push(TaggedReply {
                                    cycle,
                                    phase: 0,
                                    unit: ctrl,
                                    txn,
                                });
                            }
                            self.wake_slices.wake_now();
                        }
                    }
                }
                dram_cycle += 1;
            }

            // ---- LLC slices ----
            if !self.slices.is_empty() && cycle >= self.wake_slices.get() {
                let dram = self
                    .dram
                    .as_mut()
                    .expect("shards with slices own their channels");
                let mut next = u64::MAX;
                for (li, s) in self.slices.iter_mut().enumerate() {
                    self.replies_scratch.clear();
                    s.tick_evented(
                        cycle,
                        dram_cycle,
                        env.cfg,
                        dram,
                        &mut self.txns,
                        env.mapper,
                        &mut self.replies_scratch,
                    );
                    let unit = u32::from(self.slice_ids[li]);
                    for &txn in &self.replies_scratch {
                        self.replies_out.push(TaggedReply {
                            cycle,
                            phase: 1,
                            unit,
                            txn,
                        });
                    }
                    next = next.min(s.cached_next_event());
                }
                self.wake_slices.rebuild(next);
            }

            // ---- SMs ----
            if cycle >= self.wake_sms.get() {
                let mut next = u64::MAX;
                for (si, sm) in self.sms.iter_mut().enumerate() {
                    self.outbound_scratch.clear();
                    let ran = sm.tick_evented(
                        cycle,
                        env.cfg,
                        env.mapper,
                        &mut self.txns,
                        &slicer,
                        &mut self.outbound_scratch,
                    );
                    self.sm_activity |= ran;
                    let sm_id = self.sm_ids[si];
                    for o in &self.outbound_scratch {
                        self.reqs_out.push(TaggedReq {
                            cycle,
                            sm: sm_id,
                            txn: o.txn,
                            flits: o.flits,
                        });
                    }
                    next = next.min(sm.cached_next_event());
                }
                self.wake_sms.rebuild(next);
            }

            // ---- Metrics (per-shard contribution; summed at the barrier)
            if cycle.is_multiple_of(METRIC_SAMPLE_INTERVAL) {
                self.samples_out.push(self.sample_parts());
            }
        }
    }

    fn sample_parts(&self) -> SampleParts {
        let busy_slices = self.slices.iter().filter(|s| !s.is_idle()).count() as u64;
        let (busy_channels, bank_sum) = match &self.dram {
            None => (0, 0),
            Some(d) => {
                let mut busy = 0u64;
                let mut banks = 0u64;
                for &c in d.controllers() {
                    let ch = d.channel(c);
                    if ch.is_busy() {
                        busy += 1;
                        banks += ch.busy_banks() as u64;
                    }
                }
                (busy, banks)
            }
        };
        SampleParts {
            busy_slices,
            busy_channels,
            bank_sum,
        }
    }

    fn is_drained(&self) -> bool {
        self.sms.iter().all(Sm::is_idle)
            && self.slices.iter().all(LlcSlice::is_idle)
            && self.dram.as_ref().is_none_or(|d| !d.is_busy())
            && !self.req_ports.is_busy()
            && !self.reply_ports.is_busy()
    }
}

/// The scheduler's view of the sharded SM population, addressed by
/// global SM index.
struct ShardSmPool<'g, 'a> {
    guards: &'g mut [MutexGuard<'a, Shard>],
    /// Global SM index → (shard, local index).
    sm_map: &'g [(u32, u32)],
}

impl SmPool for ShardSmPool<'_, '_> {
    fn num_sms(&self) -> usize {
        self.sm_map.len()
    }
    fn retired_total(&self) -> u64 {
        self.guards
            .iter()
            .map(|g| g.sms.iter().map(Sm::retired_tbs).sum::<u64>())
            .sum()
    }
    fn can_accept(&self, sm: usize, warps_per_block: usize, tbs_limit: usize) -> bool {
        let (s, l) = self.sm_map[sm];
        self.guards[s as usize].sms[l as usize].can_accept_tb(warps_per_block, tbs_limit)
    }
    fn assign(&mut self, sm: usize, kernel: &dyn KernelSource, tb: u64, age: u64, cycle: u64) {
        let (s, l) = self.sm_map[sm];
        let g = &mut self.guards[s as usize];
        g.sms[l as usize].assign_tb(kernel, tb, age, cycle);
        // `assign_tb` zeroed the SM's own next-event cache; clamp the
        // owning shard's gate (only shards that actually received a TB
        // are forced to walk — the old code reset every shard).
        g.wake_sms.wake_now();
    }
}

/// Splits `0..n` into `parts` contiguous ranges (earlier ranges one
/// longer when `n % parts != 0`). Shared with the batched engine, which
/// partitions lanes across groups the same way it partitions SMs here.
pub(crate) fn split_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut at = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(at..at + len);
        at += len;
    }
    out
}

/// The LLC-slice/DRAM-channel pairing derived from the slice-routing
/// function [`GpuSim::slice_of`]: each group's slices exchange traffic
/// with exactly that group's channels, so a shard owning whole groups
/// never touches foreign memory state.
fn memory_groups(map: &dyn DramAddressMap, llc_slices: usize) -> Vec<(Vec<u16>, Vec<usize>)> {
    let nc = map.num_controllers();
    if nc >= llc_slices {
        // slice_of = controller % llc_slices: slice s serves the
        // controllers congruent to s.
        (0..llc_slices)
            .map(|s| {
                let ctrls = (s..nc).step_by(llc_slices).collect();
                (vec![s as u16], ctrls)
            })
            .collect()
    } else {
        // slice_of = controller * per + (bank % per): controller c is
        // served by slices [c*per, (c+1)*per).
        let per = llc_slices / nc;
        (0..nc)
            .map(|c| {
                let slices = (c * per..(c + 1) * per).map(|s| s as u16).collect();
                (slices, vec![c])
            })
            .collect()
    }
}

/// The barrier protocol between the coordinator and the workers:
/// **spin-then-park**. The fast path is lock-free — `epoch`, `remaining`
/// and `stop` are atomics the two sides poll for a bounded number of
/// iterations — so an epoch whose shard work finishes quickly costs no
/// futex round trips at all. Only when the spin budget runs out does a
/// side take the mutex and park on the matching Condvar; the publisher
/// then pairs every atomic update with a locked notify, so a parked
/// peer either observes the update before waiting (the lock orders the
/// two) or is woken by the notify — no missed-wakeup window.
///
/// Generic over the plan payload `P` so both epoch-barrier engines
/// share it: this engine publishes a [`Plan`] per shard epoch, the
/// batched many-sim engine (`crate::batch`) a lane-group plan per
/// lockstep epoch.
pub(crate) struct Ctrl<P> {
    /// Epoch counter, bumped by [`Ctrl::publish`] after the plan write.
    epoch: AtomicU64,
    /// Workers still ticking the current epoch.
    remaining: AtomicUsize,
    stop: AtomicBool,
    /// The published plan; written before the `epoch` bump (Release)
    /// and read after observing it (Acquire), the lock being needed
    /// only because the payload is not atomic.
    plan: Mutex<P>,
    /// Park-path lock: pure synchronization, no data.
    m: Mutex<()>,
    start_cv: Condvar,
    done_cv: Condvar,
    workers: usize,
}

impl<P: Copy + Default> Ctrl<P> {
    pub(crate) fn new(workers: usize) -> Self {
        Ctrl {
            epoch: AtomicU64::new(0),
            remaining: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            plan: Mutex::new(P::default()),
            m: Mutex::new(()),
            start_cv: Condvar::new(),
            done_cv: Condvar::new(),
            workers,
        }
    }

    /// Coordinator: publish `plan` and release the workers.
    pub(crate) fn publish(&self, plan: &P) {
        *self.plan.lock().expect("ctrl poisoned") = *plan;
        self.remaining.store(self.workers, Ordering::Release);
        self.epoch.fetch_add(1, Ordering::Release);
        // Lock-paired notify: a worker past its spin budget holds `m`
        // while re-checking `epoch`, so it either sees the bump or is
        // inside `wait` when this notify fires.
        let _g = self.m.lock().expect("ctrl poisoned");
        self.start_cv.notify_all();
    }

    /// Coordinator: wait until every worker finished the epoch — spin
    /// first, park on the Condvar only if the workers outlast the
    /// budget.
    pub(crate) fn wait_done(&self) {
        for _ in 0..SPIN_ITERS {
            if self.remaining.load(Ordering::Acquire) == 0 {
                return;
            }
            std::hint::spin_loop();
        }
        let mut g = self.m.lock().expect("ctrl poisoned");
        while self.remaining.load(Ordering::Acquire) > 0 {
            g = self.done_cv.wait(g).expect("ctrl poisoned");
        }
    }

    /// Coordinator: wake all workers for exit.
    pub(crate) fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        let _g = self.m.lock().expect("ctrl poisoned");
        self.start_cv.notify_all();
    }

    /// Worker: wait for an epoch newer than `seen` (spin, then park);
    /// `None` = shut down.
    pub(crate) fn next_epoch(&self, seen: u64) -> Option<(u64, P)> {
        let ready = |this: &Self| -> Option<Option<u64>> {
            if this.stop.load(Ordering::Acquire) {
                return Some(None);
            }
            let e = this.epoch.load(Ordering::Acquire);
            (e > seen).then_some(Some(e))
        };
        let mut outcome = None;
        for _ in 0..SPIN_ITERS {
            if let Some(o) = ready(self) {
                outcome = Some(o);
                break;
            }
            std::hint::spin_loop();
        }
        let outcome = outcome.unwrap_or_else(|| {
            let mut g = self.m.lock().expect("ctrl poisoned");
            loop {
                if let Some(o) = ready(self) {
                    break o;
                }
                g = self.start_cv.wait(g).expect("ctrl poisoned");
            }
        });
        let epoch = outcome?;
        let plan = *self.plan.lock().expect("ctrl poisoned");
        Some((epoch, plan))
    }

    /// Worker: report epoch completion.
    pub(crate) fn done(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last one out: lock-paired notify (see `publish`).
            let _g = self.m.lock().expect("ctrl poisoned");
            self.done_cv.notify_one();
        }
    }
}

/// Runs `sim` on the phase-parallel engine with `num_shards` shards and
/// up to `threads` OS threads (thread count is pure transport — results
/// depend only on the configuration, never on `threads`).
pub(crate) fn run_sharded(sim: GpuSim, num_shards: usize, threads: usize) -> SimReport {
    let GpuSim {
        cfg,
        mapper,
        map,
        workload,
        ..
    } = sim;

    let groups = memory_groups(map.as_ref(), cfg.llc_slices);
    // More shards than work units would leave permanently-empty shards;
    // clamp (results are shard-count independent anyway).
    let num_shards = num_shards.clamp(2, cfg.num_sms.max(groups.len()).max(2));
    let sm_ranges = split_ranges(cfg.num_sms, num_shards);
    let group_ranges = split_ranges(groups.len(), num_shards);

    let mut sm_map = vec![(0u32, 0u32); cfg.num_sms];
    let mut slice_map = vec![(0u32, 0u32); cfg.llc_slices];
    let mut shards: Vec<Mutex<Shard>> = Vec::with_capacity(num_shards);
    for s in 0..num_shards {
        let sm_ids: Vec<u32> = sm_ranges[s].clone().map(|i| i as u32).collect();
        let mut slice_ids: Vec<u16> = Vec::new();
        let mut ctrls: Vec<usize> = Vec::new();
        for g in group_ranges[s].clone() {
            slice_ids.extend_from_slice(&groups[g].0);
            ctrls.extend_from_slice(&groups[g].1);
        }
        ctrls.sort_unstable();
        for (l, &id) in sm_ids.iter().enumerate() {
            sm_map[id as usize] = (s as u32, l as u32);
        }
        let mut slice_local = vec![usize::MAX; cfg.llc_slices];
        for (l, &id) in slice_ids.iter().enumerate() {
            slice_map[id as usize] = (s as u32, l as u32);
            slice_local[id as usize] = l;
        }
        let sms = sm_ids.iter().map(|&i| Sm::new(i, &cfg)).collect();
        let slices: Vec<LlcSlice> = slice_ids.iter().map(|&i| LlcSlice::new(i, &cfg)).collect();
        // Every shard's DRAM subset borrows the one shared address map —
        // the config/state split's payoff: no per-shard map clones.
        let dram = (!ctrls.is_empty())
            .then(|| DramSystem::for_controllers(Arc::clone(&map), cfg.dram, &ctrls));
        shards.push(Mutex::new(Shard {
            req_ports: Crossbar::new(cfg.num_sms, slice_ids.len().max(1), cfg.noc_router_latency),
            reply_ports: Crossbar::new(cfg.llc_slices, sm_ids.len().max(1), cfg.noc_router_latency),
            wake_sms: WakeGate::new(),
            wake_slices: WakeGate::new(),
            sm_ids,
            slice_ids,
            slice_local,
            sms,
            slices,
            dram,
            txns: TxnTable::with_namespace(s as u32),
            sm_activity: false,
            replies_out: Vec::with_capacity(64),
            reqs_out: Vec::with_capacity(64),
            samples_out: Vec::with_capacity(EPOCH_CAP as usize),
            deliveries: Vec::with_capacity(64),
            completions: Vec::with_capacity(64),
            replies_scratch: Vec::with_capacity(32),
            outbound_scratch: Vec::with_capacity(32),
        }));
    }

    let env = Env {
        cfg: &cfg,
        mapper: &mapper,
        map: map.as_ref(),
        llc_slices: cfg.llc_slices,
        noc_per_core: cfg.noc_per_core(),
        dram_per_core: cfg.dram_per_core(),
    };

    let mut coord = Coordinator {
        env: &env,
        workload: workload.as_ref(),
        sm_map: &sm_map,
        slice_map: &slice_map,
        shards: &shards,
        sched: TbScheduler::new(workload.num_kernels()),
        parallelism: ParallelismIntegrator::new(),
        cycle: 0,
        noc_acc: 0.0,
        noc_cycle: 0,
        dram_acc: 0.0,
        dram_cycle: 0,
        truncated: false,
        sched_quiet: false,
        stamps: Vec::with_capacity(EPOCH_CAP as usize),
        merge_replies: Vec::with_capacity(128),
        merge_reqs: Vec::with_capacity(128),
        reply_inbox: (0..num_shards).map(|_| Vec::with_capacity(32)).collect(),
        req_inbox: (0..num_shards).map(|_| Vec::with_capacity(32)).collect(),
        sample_acc: Vec::with_capacity(EPOCH_CAP as usize),
        bank_channels: Vec::with_capacity(EPOCH_CAP as usize),
        epoch_hist: EpochHist::default(),
        plan_replies_busy: false,
    };

    let threads = threads.clamp(1, num_shards);
    if threads <= 1 {
        // Inline transport: the coordinator ticks every shard itself.
        // Identical state evolution to the threaded transport (shards are
        // mutually independent within an epoch), without any
        // synchronization — the right engine shape on a 1-core machine
        // and the workhorse of the equivalence battery.
        coord.drive(&mut |plan, shards| {
            for s in shards {
                s.lock().expect("shard poisoned").run_epoch(plan, &env);
            }
        })
    } else {
        let ctrl = Ctrl::new(threads - 1);
        std::thread::scope(|scope| {
            for w in 1..threads {
                let ctrl = &ctrl;
                let env = &env;
                let shards = &shards;
                let my: Vec<usize> = (w..shards.len()).step_by(threads).collect();
                scope.spawn(move || {
                    let mut seen = 0;
                    while let Some((epoch, plan)) = ctrl.next_epoch(seen) {
                        seen = epoch;
                        for &i in &my {
                            shards[i]
                                .lock()
                                .expect("shard poisoned")
                                .run_epoch(&plan, env);
                        }
                        ctrl.done();
                    }
                });
            }
            let own: Vec<usize> = (0..shards.len()).step_by(threads).collect();
            let report = coord.drive(&mut |plan, shards| {
                ctrl.publish(plan);
                for &i in &own {
                    shards[i]
                        .lock()
                        .expect("shard poisoned")
                        .run_epoch(plan, &env);
                }
                ctrl.wait_done();
            });
            ctrl.stop();
            report
        })
    }
}

/// The epoch driver: plans epochs, merges their results, runs the TB
/// scheduler and assembles the final report. `exec` is the transport
/// that ticks all shards through one epoch (inline or threaded).
struct Coordinator<'a> {
    env: &'a Env<'a>,
    workload: &'a dyn crate::trace::WorkloadSource,
    sm_map: &'a [(u32, u32)],
    slice_map: &'a [(u32, u32)],
    shards: &'a [Mutex<Shard>],
    sched: TbScheduler,
    parallelism: ParallelismIntegrator,
    cycle: u64,
    noc_acc: f64,
    noc_cycle: u64,
    dram_acc: f64,
    dram_cycle: u64,
    truncated: bool,
    /// Cached negative `can_progress` verdict (see the sequential loop).
    sched_quiet: bool,
    /// Post-tick NoC cycle of each epoch cycle (injection timestamps).
    stamps: Vec<u64>,
    merge_replies: Vec<TaggedReply>,
    merge_reqs: Vec<TaggedReq>,
    /// Per-destination-shard packet inboxes (reused every epoch): the
    /// barrier batches all cross-shard packets by destination and
    /// drains one `Vec` per shard, touching each shard's crossbars in
    /// one contiguous pass instead of hopping between shards per
    /// message.
    reply_inbox: Vec<Vec<Packet>>,
    req_inbox: Vec<Vec<Packet>>,
    sample_acc: Vec<SampleParts>,
    bank_channels: Vec<u64>,
    /// Epoch-length telemetry, surfaced in the report.
    epoch_hist: EpochHist,
    /// Whether any reply-net packet was in flight when the pending
    /// epoch was planned (feeds [`EpochHist::in_flight_multi`]).
    plan_replies_busy: bool,
}

enum Step {
    Ran(Plan),
    Truncated,
    Finished,
}

impl<'a> Coordinator<'a> {
    fn drive(&mut self, exec: &mut dyn FnMut(&Plan, &[Mutex<Shard>])) -> SimReport {
        let mut pending: Option<Plan> = None;
        loop {
            let step = {
                let mut guards: Vec<MutexGuard<'_, Shard>> = self
                    .shards
                    .iter()
                    .map(|s| s.lock().expect("shard poisoned"))
                    .collect();
                if let Some(plan) = pending.take() {
                    if self.merge_epoch(&plan, &mut guards) {
                        Step::Finished
                    } else if self.cycle >= self.env.cfg.max_cycles {
                        self.truncated = true;
                        Step::Finished
                    } else {
                        self.next_step(&mut guards)
                    }
                } else {
                    self.next_step(&mut guards)
                }
            };
            match step {
                Step::Finished => break,
                Step::Truncated => {
                    self.truncated = true;
                    break;
                }
                Step::Ran(plan) => {
                    exec(&plan, self.shards);
                    pending = Some(plan);
                }
            }
        }
        self.finish()
    }

    /// Fast-forwards over globally event-free spans, then plans the next
    /// epoch (without running it).
    fn next_step(&mut self, guards: &mut [MutexGuard<'_, Shard>]) -> Step {
        if self.fast_forward(guards) {
            return Step::Truncated;
        }
        let plan = self.make_plan(guards);
        Step::Ran(plan)
    }

    /// Mirrors `GpuSim::fast_forward` over the sharded state. Returns
    /// whether the cycle safety limit truncated the run.
    fn fast_forward(&mut self, guards: &mut [MutexGuard<'_, Shard>]) -> bool {
        let mut noc_next = u64::MAX;
        let mut dram_next = u64::MAX;
        let mut core_next = u64::MAX;
        for g in guards.iter() {
            noc_next = noc_next
                .min(g.req_ports.cached_next_event())
                .min(g.reply_ports.cached_next_event());
            if let Some(d) = &g.dram {
                dram_next = dram_next.min(d.cached_next_event());
            }
            core_next = core_next.min(g.wake_sms.get()).min(g.wake_slices.get());
        }
        {
            let (_, nt) = domain_ticks(self.noc_acc, self.env.noc_per_core);
            if self.noc_cycle + nt > noc_next {
                return false;
            }
            let (_, dt) = domain_ticks(self.dram_acc, self.env.dram_per_core);
            if self.dram_cycle + dt > dram_next {
                return false;
            }
        }
        if core_next <= self.cycle {
            return false;
        }
        if !self.sched_quiet {
            let pool = ShardSmPool {
                guards,
                sm_map: self.sm_map,
            };
            if self.sched.can_progress(&pool, self.env.cfg) {
                return false;
            }
            self.sched_quiet = true;
        }

        let skip_start = self.cycle;
        loop {
            if core_next <= self.cycle {
                break;
            }
            let (na, nt) = domain_ticks(self.noc_acc, self.env.noc_per_core);
            if self.noc_cycle + nt > noc_next {
                break;
            }
            let (da, dt) = domain_ticks(self.dram_acc, self.env.dram_per_core);
            if self.dram_cycle + dt > dram_next {
                break;
            }
            self.noc_acc = na;
            self.noc_cycle += nt;
            self.dram_acc = da;
            self.dram_cycle += dt;
            self.cycle += 1;
            if self.cycle >= self.env.cfg.max_cycles {
                break;
            }
        }

        let skipped = self.cycle - skip_start;
        if skipped > 0 {
            let samples = (skip_start + skipped).div_ceil(METRIC_SAMPLE_INTERVAL)
                - skip_start.div_ceil(METRIC_SAMPLE_INTERVAL);
            if samples > 0 {
                let mut parts = SampleParts::default();
                let mut bank_channels = 0u64;
                for g in guards.iter() {
                    let p = g.sample_parts();
                    parts.busy_slices += p.busy_slices;
                    parts.busy_channels += p.busy_channels;
                    parts.bank_sum += p.bank_sum;
                    bank_channels += p.busy_channels;
                }
                self.parallelism.sample_sums_n(
                    parts.busy_slices,
                    parts.busy_channels,
                    parts.bank_sum,
                    bank_channels,
                    samples,
                );
            }
        }
        self.cycle >= self.env.cfg.max_cycles
    }

    /// Plans the next epoch: one cycle whenever SM activity or the TB
    /// scheduler may be live, else extended to the safe horizon derived
    /// from the per-unit wake gates (see [`Coordinator::horizon`]).
    fn make_plan(&mut self, guards: &[MutexGuard<'_, Shard>]) -> Plan {
        let (h, replies_busy) = self.horizon(guards);
        self.plan_replies_busy = replies_busy;
        let plan = Plan {
            t_start: self.cycle,
            t_end: self.cycle + h,
            noc_acc: self.noc_acc,
            noc_cycle: self.noc_cycle,
            dram_acc: self.dram_acc,
            dram_cycle: self.dram_cycle,
        };
        // Advance the coordinator's canonical clocks over the window and
        // record each cycle's post-tick NoC stamp (the injection
        // timestamps the merge needs).
        self.stamps.clear();
        for _ in plan.t_start..plan.t_end {
            let (na, nt) = domain_ticks(self.noc_acc, self.env.noc_per_core);
            self.noc_acc = na;
            self.noc_cycle += nt;
            let (da, dt) = domain_ticks(self.dram_acc, self.env.dram_per_core);
            self.dram_acc = da;
            self.dram_cycle += dt;
            self.stamps.push(self.noc_cycle);
        }
        plan
    }

    /// How many cycles the next epoch may safely span (≥ 1), plus
    /// whether any reply-net packet was in flight when the bound was
    /// computed (epoch telemetry).
    ///
    /// Assembled from the wake-gate subsystem, per shard:
    ///
    /// * `sm_gate` — the earliest per-SM wake gate anywhere; an SM tick
    ///   is SM activity and must barrier.
    /// * `deliver_gate` — the earliest reply-net packet *completion*
    ///   (NoC cycles): a delivery wakes its SM. Crucially this is the
    ///   per-port delivery query, not the next flit movement — a
    ///   streaming reply only clamps the epoch at the cycle its last
    ///   flit lands.
    /// * `emit_cycle` — a core-cycle lower bound on the first in-epoch
    ///   reply *emission*: the per-channel DRAM minima (a completion
    ///   reply needs a channel event first), the slices' in-flight hit
    ///   heads, and `min(DRAM minimum completion latency, LLC hit
    ///   latency)` for work the epoch itself enqueues. Emitted replies
    ///   are injected at the barrier with their in-epoch stamps; they
    ///   cannot be due to move a flit before `stamp + router_latency`,
    ///   so the epoch may run until that bound instead of stopping
    ///   `router_latency` NoC cycles after its *start*.
    ///
    /// Planning is read-only: shard state is only inspected, never
    /// touched (the `&` receivers all the way down prove it).
    fn horizon(&self, guards: &[MutexGuard<'_, Shard>]) -> (u64, bool) {
        let mut replies_busy = false;
        for g in guards.iter() {
            replies_busy |= g.reply_ports.is_busy();
        }
        // The scheduler runs every cycle while no kernel is loaded
        // (kernel loads and termination both live there), so such cycles
        // barrier individually.
        if self.sched.kernel.is_none() {
            return (1, replies_busy);
        }
        let cfg = self.env.cfg;
        // Cheap gates first, each with an early-out: the expensive
        // emission scan below only runs when a multi-cycle epoch is
        // actually on the table, so 1-cycle epochs (which dominate even
        // saturated phases, and where planning runs every cycle) pay a
        // handful of scalar reads.
        let mut sm_gate = u64::MAX; // core cycles
        for g in guards.iter() {
            sm_gate = sm_gate.min(g.wake_sms.get());
        }
        if sm_gate <= self.cycle + 1 {
            // An SM may act on the very next cycle: 1-cycle epoch.
            return (1, replies_busy);
        }
        let mut deliver_gate = u64::MAX; // NoC cycles
        for g in guards.iter() {
            deliver_gate = deliver_gate.min(g.reply_ports.delivery_gate());
        }
        {
            // First NoC step: a pre-existing reply completing within it
            // forces a 1-cycle epoch — exactly the loop's first-iteration
            // break, taken before the emission scan.
            let (_, nt1) = domain_ticks(self.noc_acc, self.env.noc_per_core);
            if self.noc_cycle + nt1 > deliver_gate {
                return (1, replies_busy);
            }
        }
        let mut emit_cycle = u64::MAX; // core cycles
                                       // Work enqueued during the epoch (DRAM hand-offs, tag probes)
                                       // cannot produce a reply sooner than the shorter of the DRAM
                                       // minimum completion latency (in DRAM cycles, which take at
                                       // least as many core cycles) and the LLC hit latency.
        let enq_bound = cfg.dram.min_completion_latency().min(cfg.llc_latency);
        for g in guards.iter() {
            if let Some(d) = &g.dram {
                let dm = d.cached_next_event();
                if dm != u64::MAX {
                    // `d` DRAM cycles take at least `d` core cycles
                    // (domain clocks no faster than the core clock).
                    emit_cycle = emit_cycle.min(self.cycle + dm.saturating_sub(self.dram_cycle));
                }
            }
            let mut active = g.req_ports.is_busy();
            for s in &g.slices {
                emit_cycle = emit_cycle.min(s.next_reply_at());
                active |= !s.is_idle();
            }
            if active {
                emit_cycle = emit_cycle.min(self.cycle + enq_bound);
            }
        }
        let rl = cfg.noc_router_latency;
        let cap = EPOCH_CAP.min(cfg.max_cycles - self.cycle);
        let mut h = 0u64;
        let mut na = self.noc_acc;
        let mut nc = self.noc_cycle;
        // NoC stamp of the first emission-capable cycle, once the window
        // reaches it. Stamps never precede the window's starting NoC
        // cycle, so an already-due emission gate degrades exactly to the
        // old `noc_cycle + router_latency` rule.
        let mut emit_stamp = (emit_cycle <= self.cycle).then_some(self.noc_cycle);
        while h < cap && self.cycle + h < sm_gate {
            let (na2, nt) = domain_ticks(na, self.env.noc_per_core);
            let v = nc + nt;
            // A reply delivery inside the window would wake an SM.
            if v > deliver_gate {
                break;
            }
            // A barrier-injected emission must not already be due.
            if emit_stamp.is_some_and(|es| v > es + rl) {
                break;
            }
            na = na2;
            nc = v;
            h += 1;
            if emit_stamp.is_none() && self.cycle + h > emit_cycle {
                // The cycle just admitted is the first emission-capable
                // one; its post-tick NoC cycle stamps its injections.
                emit_stamp = Some(nc);
            }
        }
        (h.max(1), replies_busy)
    }

    /// The epoch barrier: merge outboxes in sequential order, inject
    /// cross-shard packets, integrate samples, and run the TB scheduler
    /// exactly where the sequential loop would. Returns whether the
    /// simulation terminated.
    fn merge_epoch(&mut self, plan: &Plan, guards: &mut [MutexGuard<'_, Shard>]) -> bool {
        debug_assert_eq!(self.cycle, plan.t_start);
        let width = (plan.t_end - plan.t_start) as usize;
        debug_assert_eq!(self.stamps.len(), width);

        // ---- Collect outboxes ----
        let mut sm_activity = false;
        self.merge_replies.clear();
        self.merge_reqs.clear();
        let samples_per_shard = (plan.t_start..plan.t_end)
            .filter(|c| c.is_multiple_of(METRIC_SAMPLE_INTERVAL))
            .count();
        self.bank_channels.clear();
        self.bank_channels.resize(samples_per_shard, 0);
        self.sample_acc.clear();
        self.sample_acc
            .resize(samples_per_shard, SampleParts::default());
        let bank_channels = &mut self.bank_channels;
        let sample_acc = &mut self.sample_acc;
        for g in guards.iter_mut() {
            sm_activity |= g.sm_activity;
            g.sm_activity = false;
            self.merge_replies.append(&mut g.replies_out);
            self.merge_reqs.append(&mut g.reqs_out);
            debug_assert_eq!(g.samples_out.len(), samples_per_shard);
            for (i, p) in g.samples_out.drain(..).enumerate() {
                sample_acc[i].busy_slices += p.busy_slices;
                sample_acc[i].busy_channels += p.busy_channels;
                sample_acc[i].bank_sum += p.bank_sum;
                bank_channels[i] += p.busy_channels;
            }
        }
        for (p, &bc) in sample_acc.iter().zip(bank_channels.iter()) {
            self.parallelism
                .sample_sums_n(p.busy_slices, p.busy_channels, p.bank_sum, bc, 1);
        }

        // ---- Inject cross-shard traffic in sequential order ----
        // Stable sorts: entries with equal keys come from a single shard
        // and stay in their (already sequential) push order. Packets are
        // batched into one inbox per destination shard first — the sort
        // order survives the stable partition, so each crossbar sees the
        // identical per-port injection sequence — and every shard's
        // crossbars are then filled in one contiguous drain instead of
        // per-message hops between shards.
        self.merge_replies
            .sort_by_key(|r| (r.cycle, r.phase, r.unit));
        self.merge_reqs.sort_by_key(|q| (q.cycle, q.sm));
        let stamps = &self.stamps;
        let stamp_of = |cycle: u64| stamps[(cycle - plan.t_start) as usize];
        for i in 0..self.merge_replies.len() {
            let r = self.merge_replies[i];
            let rec = *guards[TxnTable::namespace_of(r.txn)].txns.get(r.txn);
            let (ds, dl) = self.sm_map[rec.sm as usize];
            self.reply_inbox[ds as usize].push(Packet {
                payload: rec.origin,
                src: rec.slice as usize,
                dst: dl as usize,
                flits: valley_noc::DATA_FLITS,
                injected_at: stamp_of(r.cycle),
            });
        }
        for i in 0..self.merge_reqs.len() {
            let q = self.merge_reqs[i];
            let rec = *guards[TxnTable::namespace_of(q.txn)].txns.get(q.txn);
            let (ds, dl) = self.slice_map[rec.slice as usize];
            let copy = guards[ds as usize].txns.alloc_copy(rec, q.txn);
            self.req_inbox[ds as usize].push(Packet {
                payload: copy,
                src: rec.sm as usize,
                dst: dl as usize,
                flits: q.flits,
                injected_at: stamp_of(q.cycle),
            });
        }
        for (s, g) in guards.iter_mut().enumerate() {
            for pkt in self.reply_inbox[s].drain(..) {
                g.reply_ports.inject(pkt);
            }
            for pkt in self.req_inbox[s].drain(..) {
                g.req_ports.inject(pkt);
            }
        }

        // ---- Epoch telemetry ----
        self.epoch_hist
            .record(plan.t_end - plan.t_start, self.plan_replies_busy);

        // ---- TB scheduler (the sequential loop's gate, verbatim) ----
        debug_assert!(
            width == 1 || !sm_activity,
            "multi-cycle epochs must be SM-quiet"
        );
        if sm_activity || self.sched.kernel.is_none() {
            let mut pool = ShardSmPool {
                guards,
                sm_map: self.sm_map,
            };
            self.sched
                .run(&mut pool, self.workload, self.env.cfg, plan.t_end - 1);
            self.sched_quiet = false;
            // The pool lowered the wake gates of exactly the SMs it
            // assigned to; no blanket invalidation is needed.
        }

        self.cycle = plan.t_end;
        self.sched.finished() && guards.iter().all(|g| g.is_drained())
    }

    /// Settles every deferred counter and assembles the report.
    fn finish(&mut self) -> SimReport {
        let mut guards: Vec<MutexGuard<'_, Shard>> = self
            .shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned"))
            .collect();
        let mut req = NocStats::default();
        let mut rep = NocStats::default();
        let mut dram = valley_dram::DramStats::default();
        let mut txn_count = 0u64;
        for g in guards.iter_mut() {
            g.req_ports.flush_deferred(self.noc_cycle);
            g.reply_ports.flush_deferred(self.noc_cycle);
            if let Some(d) = &mut g.dram {
                d.flush_deferred(self.dram_cycle);
                dram.merge(&d.total_stats());
            }
            for sm in &mut g.sms {
                sm.flush_idle(self.cycle);
            }
            for s in &mut g.slices {
                s.flush_stall(self.cycle);
            }
            let rq = g.req_ports.stats();
            req.delivered += rq.delivered;
            req.total_latency += rq.total_latency;
            req.flits += rq.flits;
            req.cycles += rq.cycles;
            let rp = g.reply_ports.stats();
            rep.delivered += rp.delivered;
            rep.total_latency += rp.total_latency;
            rep.flits += rp.flits;
            rep.cycles += rp.cycles;
            txn_count += g.txns.len();
        }
        build_report(ReportParts {
            cfg: self.env.cfg,
            benchmark: self.workload.name(),
            scheme: self.env.mapper.kind().label().to_string(),
            cycles: self.cycle,
            dram_cycles: self.dram_cycle,
            truncated: self.truncated,
            parallelism: &self.parallelism,
            kernels: self.sched.kernel_idx,
            sms: &mut guards.iter().flat_map(|g| g.sms.iter()),
            slices: &mut guards.iter().flat_map(|g| g.slices.iter()),
            dram,
            dram_channels: self.env.map.num_controllers(),
            req,
            rep,
            memory_transactions: txn_count,
            epoch_hist: self.epoch_hist,
        })
    }
}
