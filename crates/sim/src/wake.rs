//! The wake-gate subsystem: the one discipline both drive loops use to
//! decide when a population of units (SMs, LLC slices) can next do real
//! work, and the per-unit queries the phase-parallel safe horizon is
//! built from.
//!
//! A *wake gate* is a never-late lower bound: a gate over a unit
//! population is a cycle at or before the earliest cycle at which
//! ticking any of those units does real work. Two operations maintain
//! it exactly:
//!
//! * **walk rebuild** — a component walk that just ticked its units
//!   recomputes the gate as the minimum of their (exact) per-unit
//!   next-event caches;
//! * **out-of-band clamp** — an event produced outside the walk (a NoC
//!   delivery, a DRAM fill, a TB assignment) lowers the gate to the
//!   event's own cycle, never raising it.
//!
//! [`WakeGate`] packages that discipline. The sequential evented loop
//! keeps one gate per population (SMs, slices); the phase-parallel
//! engine keeps one *per shard* per population — exactly the minimum
//! over the shard's own units at every epoch boundary (the walk that
//! closed the epoch rebuilt it) — and folds them, together with the
//! per-port delivery queries below, into its global epoch bound.
//!
//! The rest of the subsystem is *per-unit wake queries answered on
//! demand from component state* rather than mirrored into a separate
//! index:
//!
//! * per-reply-port packet completion times —
//!   [`Crossbar::port_delivery_at`]/[`Crossbar::delivery_gate`]
//!   (`valley-noc`): when each port's in-flight reply can actually wake
//!   the SM behind it;
//! * per-channel DRAM minima — [`DramSystem::channel_next_event`]
//!   (`valley-dram`) behind the slices' DRAM back-pressure retry gates,
//!   and the shard-level minimum behind the horizon's emission gate (no
//!   completion reply can precede a channel event);
//! * per-slice reply peeks — `LlcSlice::next_reply_at` and the
//!   `retry_gate` the slice's own next-event cache already folds in.
//!
//! # Why gates are scalars and the queries are on-demand
//!
//! The first cut of this subsystem mirrored every unit's next-event
//! cache into a per-unit gate array with an incrementally-maintained
//! minimum (a lazy min-heap, then a dirty-tracked rescan). Measured on
//! the Ref-scale smoke slice it lost 10–25% end-to-end: wake gates
//! move *every effective cycle* during busy phases (unlike, say, DRAM
//! bank readiness, which moves per command), so the per-unit mirror
//! writes dominated the drive loop — and nothing ever read an
//! individual mirrored gate, only minima (the walks) and the per-port
//! delivery times (the horizon), which the components answer exactly
//! and more cheaply on demand. The scalar-gate + on-demand-query design
//! below keeps the sequential hot loop at its pre-subsystem cost while
//! giving the parallel engine the per-shard, per-port resolution it
//! needed.
//!
//! [`Crossbar::port_delivery_at`]: valley_noc::Crossbar::port_delivery_at
//! [`Crossbar::delivery_gate`]: valley_noc::Crossbar::delivery_gate
//! [`DramSystem::channel_next_event`]: valley_dram::DramSystem::channel_next_event

/// A never-late wake gate over a population of units (see the module
/// docs for the maintenance discipline). Starts at cycle 0: every unit
/// must be offered its first tick, matching the initial state of the
/// units' own next-event caches.
#[derive(Clone, Copy, Debug)]
pub(crate) struct WakeGate(u64);

impl WakeGate {
    pub(crate) fn new() -> Self {
        WakeGate(0)
    }

    /// The gate: no unit in the population does real work before this
    /// cycle.
    #[inline]
    pub(crate) fn get(self) -> u64 {
        self.0
    }

    /// Out-of-band clamp: an event at `at` may let a unit act at `at`;
    /// the gate only ever moves earlier.
    #[inline]
    pub(crate) fn wake_at(&mut self, at: u64) {
        if at < self.0 {
            self.0 = at;
        }
    }

    /// Out-of-band clamp to "now or ever" — the common invalidation
    /// (deliveries, fills, assignments all force a tick on their own
    /// cycle, and the walk gate compares with `>=`).
    #[inline]
    pub(crate) fn wake_now(&mut self) {
        self.0 = 0;
    }

    /// Walk rebuild: the walk that just ticked every due unit publishes
    /// the exact minimum of the per-unit next-event caches.
    #[inline]
    pub(crate) fn rebuild(&mut self, min: u64) {
        self.0 = min;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fresh_gate_admits_the_first_tick() {
        let g = WakeGate::new();
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn clamps_only_move_earlier() {
        let mut g = WakeGate::new();
        g.rebuild(50);
        g.wake_at(60);
        assert_eq!(g.get(), 50, "a later event must not raise the gate");
        g.wake_at(20);
        assert_eq!(g.get(), 20);
        g.wake_now();
        assert_eq!(g.get(), 0);
        g.rebuild(u64::MAX);
        assert_eq!(g.get(), u64::MAX, "an event-free population parks");
    }

    /// Model check of the maintenance discipline: drive a population of
    /// fake units through random walks and out-of-band events; the gate
    /// must stay a never-late lower bound on the units' true minimum,
    /// and be exact right after every walk.
    #[derive(Clone)]
    struct Unit {
        next: u64,
    }

    proptest! {
        #[test]
        fn gate_is_never_late_and_exact_after_walks(
            n in 1usize..16,
            ops in proptest::collection::vec((0usize..16, 0u64..64, any::<bool>()), 1..200),
        ) {
            let mut units = vec![Unit { next: 0 }; n];
            let mut gate = WakeGate::new();
            let mut cycle = 0u64;
            for &(u, v, walk) in &ops {
                if walk {
                    // A walk at `cycle`: due units tick and recompute
                    // their own caches (any future value); the gate is
                    // rebuilt from the true minimum.
                    if cycle >= gate.get() {
                        for (i, unit) in units.iter_mut().enumerate() {
                            if cycle >= unit.next {
                                unit.next = cycle + 1 + (v + i as u64) % 16;
                            }
                        }
                        let min = units.iter().map(|x| x.next).min().unwrap();
                        gate.rebuild(min);
                        prop_assert_eq!(gate.get(), min, "walk rebuild must be exact");
                    }
                    cycle += 1;
                } else {
                    // Out-of-band event: some unit becomes actionable at
                    // the current cycle.
                    units[u % n].next = cycle;
                    gate.wake_at(cycle);
                }
                let true_min = units.iter().map(|x| x.next).min().unwrap();
                prop_assert!(
                    gate.get() <= true_min,
                    "gate {} ran past the true minimum {} (a late gate skips work)",
                    gate.get(),
                    true_min
                );
            }
        }
    }
}
