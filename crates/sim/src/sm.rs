//! A Streaming Multiprocessor: resident thread blocks, warps, the GTO warp
//! scheduler (2 issue slots), the memory coalescer, and the per-SM L1 data
//! cache with MSHRs.

use crate::coalesce::coalesce_into;
use crate::config::GpuConfig;
use crate::trace::{Instruction, KernelSource, WarpProgram};
use crate::txn::{TxnTable, NO_WARP};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use valley_cache::{CacheStats, MshrAllocation, MshrFile, SetAssocCache};
use valley_compute::{backend, ComputeScratch};
use valley_core::{AddressMapper, PhysAddr};

/// A NoC request emitted by an SM (to be injected by the GPU top level).
#[derive(Clone, Copy, Debug)]
pub(crate) struct SmOutbound {
    /// Transaction token.
    pub txn: u64,
    /// Packet size in flits.
    pub flits: u32,
}

struct TbState {
    warps_left: u32,
}

/// The GTO ready set: (age, warp slot) pairs kept sorted ascending. At
/// most `max_warps_per_sm` (48) entries, where a sorted `Vec` beats a
/// `BTreeSet` soundly (contiguous memory, no node allocation) — these
/// operations run per issue slot per SM per cycle.
#[derive(Default)]
struct ReadySet(Vec<(u64, u32)>);

impl ReadySet {
    #[inline]
    fn insert(&mut self, key: (u64, u32)) {
        if let Err(pos) = self.0.binary_search(&key) {
            self.0.insert(pos, key);
        }
    }

    #[inline]
    fn remove(&mut self, key: &(u64, u32)) {
        if let Ok(pos) = self.0.binary_search(key) {
            self.0.remove(pos);
        }
    }

    #[inline]
    fn contains(&self, key: &(u64, u32)) -> bool {
        self.0.binary_search(key).is_ok()
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Ascending (age, slot) iteration — GTO's oldest-first order.
    #[inline]
    fn iter(&self) -> std::slice::Iter<'_, (u64, u32)> {
        self.0.iter()
    }
}

struct Warp {
    tb_slot: u32,
    /// TB assignment time: GTO's "oldest" order (ties broken by slot).
    age: u64,
    program: Box<dyn WarpProgram>,
    outstanding_loads: u32,
    finished: bool,
}

/// Per-SM issue and memory-path state.
pub(crate) struct Sm {
    id: u32,
    warps: Vec<Option<Warp>>,
    free_warp_slots: Vec<u32>,
    /// Warps able to issue, keyed by (age, slot) — GTO's oldest-first order.
    ready: ReadySet,
    /// Compute-stalled warps and their wake-up cycles.
    wake: BinaryHeap<Reverse<(u64, u32)>>,
    last_issued: Option<u32>,
    /// Coalesced transactions awaiting the L1 (LSU queue; 1/cycle).
    mem_queue: VecDeque<u64>,
    /// Reusable coalescing output (issue path, allocation-free).
    lines_buf: Vec<u64>,
    /// Reusable batch-mapped addresses for `lines_buf` (issue path).
    mapped_buf: Vec<u64>,
    /// Scratch for the compute backend's batch scheme application.
    compute_scratch: ComputeScratch,
    /// Reusable MSHR-waiter drain buffer (reply path, allocation-free).
    waiter_buf: Vec<u64>,
    l1: SetAssocCache,
    mshr: MshrFile,
    /// L1 hits in flight: (ready cycle, txn).
    hit_queue: VecDeque<(u64, u64)>,
    tb_slots: Vec<Option<TbState>>,
    free_tb_slots: Vec<u32>,
    resident_tbs: usize,
    resident_warps: usize,
    /// When `Some(v)`: the LSU head is MSHR-stalled and nothing that
    /// could unblock it has happened since version `v` — the retry is
    /// answered with a counter update alone. Bumping [`Sm::on_reply`]
    /// invalidates the cache (replies are the only events that free
    /// MSHRs or fill lines).
    lsu_stall: Option<u64>,
    /// Version counter for `lsu_stall`, incremented per reply.
    lsu_version: u64,
    /// Cached earliest core cycle at which [`Sm::tick`] does real work
    /// (`u64::MAX` = nothing locally schedulable); maintained by
    /// [`Sm::tick_evented`] and invalidated by replies and TB assignment.
    cached_next: u64,
    /// First core cycle whose busy-counter update is still deferred.
    acct_from: u64,
    // Statistics.
    warp_instructions: u64,
    busy_cycles: u64,
    retired_tbs: u64,
}

impl Sm {
    pub(crate) fn new(id: u32, cfg: &GpuConfig) -> Self {
        Sm {
            id,
            warps: (0..cfg.max_warps_per_sm).map(|_| None).collect(),
            free_warp_slots: (0..cfg.max_warps_per_sm as u32).rev().collect(),
            ready: ReadySet::default(),
            wake: BinaryHeap::with_capacity(cfg.max_warps_per_sm),
            last_issued: None,
            mem_queue: VecDeque::with_capacity(64),
            lines_buf: Vec::with_capacity(32),
            mapped_buf: Vec::with_capacity(32),
            compute_scratch: ComputeScratch::new(),
            waiter_buf: Vec::with_capacity(8),
            l1: SetAssocCache::new(cfg.l1),
            mshr: MshrFile::new(cfg.l1_mshrs, cfg.l1_mshr_merges),
            hit_queue: VecDeque::with_capacity(32),
            tb_slots: (0..cfg.max_tbs_per_sm).map(|_| None).collect(),
            free_tb_slots: (0..cfg.max_tbs_per_sm as u32).rev().collect(),
            resident_tbs: 0,
            resident_warps: 0,
            lsu_stall: None,
            lsu_version: 0,
            cached_next: 0,
            acct_from: 0,
            warp_instructions: 0,
            busy_cycles: 0,
            retired_tbs: 0,
        }
    }

    /// Whether this SM can accept a TB of `warps_per_block` warps, given
    /// the per-kernel residency limit.
    pub(crate) fn can_accept_tb(&self, warps_per_block: usize, tbs_limit: usize) -> bool {
        self.resident_tbs < tbs_limit
            && !self.free_tb_slots.is_empty()
            && self.free_warp_slots.len() >= warps_per_block
    }

    /// Assigns TB `tb` of `kernel`, creating its warps with age `age`.
    /// `cycle` is the current core cycle: TB assignment happens after the
    /// SM phase, so deferred busy accounting is settled through the end
    /// of this cycle (with the pre-assignment warp population) before the
    /// new warps land.
    pub(crate) fn assign_tb(&mut self, kernel: &dyn KernelSource, tb: u64, age: u64, cycle: u64) {
        // Workload input generation: `warp_program` boxes each warp's
        // instruction stream. Declared to the allocation audit — this is
        // the workload handing the engine fresh input, not tick work.
        let _audit_pause = crate::alloc_audit::pause();
        self.flush_idle(cycle + 1);
        self.cached_next = 0;
        let wpb = kernel.warps_per_block();
        let slot = self.free_tb_slots.pop().expect("caller checked capacity");
        self.tb_slots[slot as usize] = Some(TbState {
            warps_left: wpb as u32,
        });
        self.resident_tbs += 1;
        for w in 0..wpb {
            let ws = self.free_warp_slots.pop().expect("caller checked capacity");
            self.warps[ws as usize] = Some(Warp {
                tb_slot: slot,
                age,
                program: kernel.warp_program(tb, w),
                outstanding_loads: 0,
                finished: false,
            });
            self.ready.insert((age, ws));
            self.resident_warps += 1;
        }
    }

    /// TBs retired so far (monotone; the scheduler reads the total).
    pub(crate) fn retired_tbs(&self) -> u64 {
        self.retired_tbs
    }

    /// Whether the SM holds no warps and has no memory work in flight.
    pub(crate) fn is_idle(&self) -> bool {
        self.resident_warps == 0
            && self.mem_queue.is_empty()
            && self.hit_queue.is_empty()
            && self.mshr.is_empty()
    }

    pub(crate) fn l1_stats(&self) -> CacheStats {
        self.l1.stats()
    }

    pub(crate) fn warp_instructions(&self) -> u64 {
        self.warp_instructions
    }

    pub(crate) fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// The earliest core cycle at or after `now` at which [`Sm::tick`]
    /// would do real work (wake a warp, finish a hit, run the LSU or issue
    /// an instruction), or `None` when only off-SM events (NoC replies)
    /// can make progress. Between `now` and the returned cycle every tick
    /// is a pure busy-counter update — see [`Sm::skip_idle`].
    pub(crate) fn next_event_at(&self, now: u64) -> Option<u64> {
        // A non-empty LSU queue is only an every-cycle event while it can
        // make progress; a stall-cached head just counts a retry miss per
        // cycle, which flush_idle replays in bulk.
        if (!self.mem_queue.is_empty() && !self.lsu_stalled_now()) || !self.ready.is_empty() {
            return Some(now);
        }
        let mut next: Option<u64> = None;
        if let Some(&Reverse((when, _))) = self.wake.peek() {
            next = Some(when.max(now));
        }
        if let Some(&(ready, _)) = self.hit_queue.front() {
            let at = ready.max(now);
            next = Some(next.map_or(at, |n| n.min(at)));
        }
        next
    }

    /// Accounts `n` provably event-free core cycles (the bulk equivalent
    /// of `n` dense no-op [`Sm::tick`]s).
    pub(crate) fn skip_idle(&mut self, n: u64) {
        if self.resident_warps > 0 {
            self.busy_cycles += n;
        }
    }

    /// The cached next-event cycle maintained by [`Sm::tick_evented`].
    #[inline]
    pub(crate) fn cached_next_event(&self) -> u64 {
        self.cached_next
    }

    /// Whether the LSU head is known to be MSHR-stalled with nothing
    /// having happened that could unblock it.
    #[inline]
    fn lsu_stalled_now(&self) -> bool {
        self.lsu_stall == Some(self.lsu_version)
    }

    /// Brings the deferred counters up to date with `up_to` (exclusive):
    /// the busy counter (current warp population) and, while the LSU is
    /// stall-cached, the one retry miss per elided cycle the dense loop
    /// would have recorded.
    pub(crate) fn flush_idle(&mut self, up_to: u64) {
        if up_to > self.acct_from {
            self.skip_idle(up_to - self.acct_from);
            if self.lsu_stalled_now() {
                self.l1.record_retry_misses(up_to - self.acct_from);
            }
            self.acct_from = up_to;
        }
    }

    /// Handles an LLC reply for `txn`: fills the L1 line and wakes every
    /// merged waiter.
    pub(crate) fn on_reply(&mut self, txn: u64, txns: &TxnTable, cycle: u64) {
        // Settle deferred accounting with the pre-reply warp population,
        // then force a tick this cycle (the reply may wake warps).
        self.flush_idle(cycle);
        self.cached_next = cycle;
        self.lsu_version += 1;
        let line = txns.get(txn).line;
        self.l1.fill(line);
        let mut waiters = std::mem::take(&mut self.waiter_buf);
        waiters.clear();
        if self.mshr.complete_into(line, &mut waiters) {
            for &w in &waiters {
                self.complete_load(w, txns, cycle);
            }
        }
        waiters.clear();
        self.waiter_buf = waiters;
    }

    fn complete_load(&mut self, txn: u64, txns: &TxnTable, _cycle: u64) {
        let warp_idx = txns.get(txn).warp;
        debug_assert_ne!(warp_idx, NO_WARP, "stores never complete loads");
        let Some(warp) = self.warps[warp_idx as usize].as_mut() else {
            return;
        };
        debug_assert!(warp.outstanding_loads > 0);
        warp.outstanding_loads -= 1;
        if warp.outstanding_loads == 0 {
            if warp.finished {
                self.retire_warp(warp_idx);
            } else {
                let age = warp.age;
                self.ready.insert((age, warp_idx));
            }
        }
    }

    fn retire_warp(&mut self, warp_idx: u32) {
        let warp = self.warps[warp_idx as usize]
            .take()
            .expect("retiring a live warp");
        self.free_warp_slots.push(warp_idx);
        self.resident_warps -= 1;
        let tb = warp.tb_slot;
        let state = self.tb_slots[tb as usize]
            .as_mut()
            .expect("warp's TB is resident");
        state.warps_left -= 1;
        if state.warps_left == 0 {
            self.tb_slots[tb as usize] = None;
            self.free_tb_slots.push(tb);
            self.resident_tbs -= 1;
            self.retired_tbs += 1;
        }
    }

    /// Event-gated [`Sm::tick`]: a no-op (with the busy counter deferred)
    /// while the cached next-event cycle is in the future. Bit-identical
    /// to ticking densely every cycle. Returns whether the tick actually
    /// ran — the driver uses this to prove the TB scheduler's view of SM
    /// capacity is unchanged and skip its per-SM scans.
    #[inline]
    pub(crate) fn tick_evented(
        &mut self,
        cycle: u64,
        cfg: &GpuConfig,
        mapper: &AddressMapper,
        txns: &mut TxnTable,
        slice_of: &dyn Fn(PhysAddr) -> u16,
        outbound: &mut Vec<SmOutbound>,
    ) -> bool {
        if cycle < self.cached_next {
            return false;
        }
        self.flush_idle(cycle);
        self.tick(cycle, cfg, mapper, txns, slice_of, outbound);
        self.cached_next = self.next_event_at(cycle + 1).unwrap_or(u64::MAX);
        true
    }

    /// One core cycle: wake compute-stalled warps, finish L1 hits, run the
    /// LSU, and issue up to `issue_width` instructions via GTO.
    pub(crate) fn tick(
        &mut self,
        cycle: u64,
        cfg: &GpuConfig,
        mapper: &AddressMapper,
        txns: &mut TxnTable,
        slice_of: &dyn Fn(PhysAddr) -> u16,
        outbound: &mut Vec<SmOutbound>,
    ) {
        debug_assert!(cycle >= self.acct_from, "ticking an already-counted cycle");
        if self.resident_warps > 0 {
            self.busy_cycles += 1;
        }
        self.acct_from = cycle + 1;

        // Wake compute-stalled warps.
        while let Some(&Reverse((when, w))) = self.wake.peek() {
            if when > cycle {
                break;
            }
            self.wake.pop();
            if let Some(warp) = self.warps[w as usize].as_ref() {
                debug_assert!(!warp.finished);
                self.ready.insert((warp.age, w));
            }
        }

        // L1 hit completions (FIFO: fixed latency).
        while let Some(&(ready, txn)) = self.hit_queue.front() {
            if ready > cycle {
                break;
            }
            self.hit_queue.pop_front();
            self.complete_load(txn, txns, cycle);
        }

        self.lsu_tick(cycle, cfg, mapper, txns, outbound);
        self.issue_tick(cycle, cfg, mapper, txns, slice_of);
    }

    /// The load-store unit: one coalesced transaction per cycle through
    /// the L1.
    fn lsu_tick(
        &mut self,
        cycle: u64,
        cfg: &GpuConfig,
        mapper: &AddressMapper,
        txns: &mut TxnTable,
        outbound: &mut Vec<SmOutbound>,
    ) {
        let Some(&txn) = self.mem_queue.front() else {
            return;
        };
        if let Some(v) = self.lsu_stall {
            if v == self.lsu_version {
                // Still stalled: replay the probe's miss counter (the
                // dense retry would probe, miss and stall again).
                self.l1.record_retry_miss();
                return;
            }
            self.lsu_stall = None;
        }
        let info = txns.get(txn);
        if info.is_store {
            // Write-through, no-allocate: straight to the LLC, carrying data.
            self.mem_queue.pop_front();
            outbound.push(SmOutbound {
                txn,
                flits: valley_noc::DATA_FLITS,
            });
            return;
        }
        let line = info.line;
        if self.l1.probe(line) {
            self.mem_queue.pop_front();
            let lat = cfg.l1_hit_latency + mapper.latency_cycles() as u64;
            self.hit_queue.push_back((cycle + lat, txn));
            return;
        }
        match self.mshr.allocate(line, txn) {
            MshrAllocation::NewEntry => {
                self.mem_queue.pop_front();
                outbound.push(SmOutbound {
                    txn,
                    flits: valley_noc::REQUEST_FLITS,
                });
            }
            MshrAllocation::Merged => {
                self.mem_queue.pop_front();
            }
            MshrAllocation::Stalled => {
                // Head-of-line: resource stall. Cache the verdict — it
                // cannot change until a reply frees an MSHR or fills the
                // line — so retries cost one counter update.
                self.lsu_stall = Some(self.lsu_version);
            }
        }
    }

    /// Warp issue: pick by the configured policy (GTO or LRR), up to
    /// `issue_width` distinct warps per cycle.
    fn issue_tick(
        &mut self,
        cycle: u64,
        cfg: &GpuConfig,
        mapper: &AddressMapper,
        txns: &mut TxnTable,
        slice_of: &dyn Fn(PhysAddr) -> u16,
    ) {
        // Stack buffer: issue_width is tiny (2 in Table I) and this runs
        // for every SM every cycle — no heap traffic allowed here.
        const MAX_ISSUE: usize = 8;
        assert!(
            cfg.issue_width <= MAX_ISSUE,
            "issue_width {} exceeds the supported maximum of {MAX_ISSUE}",
            cfg.issue_width
        );
        let mut issued = [u32::MAX; MAX_ISSUE];
        for slot in 0..cfg.issue_width {
            let already = &issued[..slot];
            let pick = match cfg.scheduler {
                crate::config::WarpScheduler::Gto => self.pick_gto(already),
                crate::config::WarpScheduler::Lrr => self.pick_lrr(already),
            };
            let Some(w) = pick else { break };
            issued[slot] = w;
            self.issue_one(w, cycle, cfg, mapper, txns, slice_of);
        }
    }

    /// GTO: greedily stick with the last-issued warp, otherwise the
    /// oldest ready warp.
    fn pick_gto(&self, already: &[u32]) -> Option<u32> {
        if let Some(last) = self.last_issued {
            if !already.contains(&last) {
                if let Some(warp) = self.warps[last as usize].as_ref() {
                    if self.ready.contains(&(warp.age, last)) {
                        return Some(last);
                    }
                }
            }
        }
        self.ready
            .iter()
            .map(|&(_, w)| w)
            .find(|w| !already.contains(w))
    }

    /// Loose round-robin: the ready warp with the smallest slot index
    /// strictly greater than the last-issued slot, wrapping around.
    fn pick_lrr(&self, already: &[u32]) -> Option<u32> {
        let start = self.last_issued.map_or(0, |w| w + 1);
        let mut slots: Vec<u32> = self.ready.iter().map(|&(_, w)| w).collect();
        slots.sort_unstable();
        slots
            .iter()
            .copied()
            .find(|&w| w >= start && !already.contains(&w))
            .or_else(|| slots.into_iter().find(|w| !already.contains(w)))
    }

    fn issue_one(
        &mut self,
        w: u32,
        cycle: u64,
        cfg: &GpuConfig,
        mapper: &AddressMapper,
        txns: &mut TxnTable,
        slice_of: &dyn Fn(PhysAddr) -> u16,
    ) {
        let warp = self.warps[w as usize]
            .as_mut()
            .expect("ready warps are live");
        let age = warp.age;
        self.last_issued = Some(w);
        // Workload input generation: the program may allocate the lane
        // address vector of a memory instruction. Declared to the
        // allocation audit — see `crate::alloc_audit`.
        let inst = {
            let _audit_pause = crate::alloc_audit::pause();
            warp.program.next_instruction()
        };
        match inst {
            None => {
                warp.finished = true;
                self.ready.remove(&(age, w));
                if warp.outstanding_loads == 0 {
                    self.retire_warp(w);
                }
            }
            Some(Instruction::Compute { cycles }) => {
                self.warp_instructions += 1;
                self.ready.remove(&(age, w));
                self.wake.push(Reverse((cycle + cycles.max(1) as u64, w)));
            }
            Some(Instruction::Load(lanes)) => {
                self.warp_instructions += 1;
                let mut lines = std::mem::take(&mut self.lines_buf);
                coalesce_into(&lanes, cfg.line_bytes, &mut lines);
                if lines.is_empty() {
                    // Degenerate empty access behaves like a 1-cycle op.
                    self.lines_buf = lines;
                    self.ready.remove(&(age, w));
                    self.wake.push(Reverse((cycle + 1, w)));
                    return;
                }
                warp.outstanding_loads = lines.len() as u32;
                self.ready.remove(&(age, w));
                // Scheme application goes through the compute backend in
                // one batch per instruction; sub-tile batches (≤ 32
                // coalesced lines) take its scalar path, so the mapped
                // addresses are bit-identical to per-line `mapper.map`.
                let mut mapped = std::mem::take(&mut self.mapped_buf);
                backend().bim_apply_batch(
                    mapper.bim(),
                    &lines,
                    &mut mapped,
                    &mut self.compute_scratch,
                );
                for (&line, &m) in lines.iter().zip(&mapped) {
                    let m = PhysAddr::new(m);
                    let txn = txns.alloc(self.id, w, false, line, m, slice_of(m));
                    self.mem_queue.push_back(txn);
                }
                self.mapped_buf = mapped;
                self.lines_buf = lines;
            }
            Some(Instruction::Store(lanes)) => {
                self.warp_instructions += 1;
                // Fire-and-forget: the warp stays ready.
                let mut lines = std::mem::take(&mut self.lines_buf);
                coalesce_into(&lanes, cfg.line_bytes, &mut lines);
                let mut mapped = std::mem::take(&mut self.mapped_buf);
                backend().bim_apply_batch(
                    mapper.bim(),
                    &lines,
                    &mut mapped,
                    &mut self.compute_scratch,
                );
                for (&line, &m) in lines.iter().zip(&mapped) {
                    let m = PhysAddr::new(m);
                    let txn = txns.alloc(self.id, NO_WARP, true, line, m, slice_of(m));
                    self.mem_queue.push_back(txn);
                }
                self.mapped_buf = mapped;
                self.lines_buf = lines;
            }
        }
    }
}
