//! A Streaming Multiprocessor: resident thread blocks, warps, the GTO warp
//! scheduler (2 issue slots), the memory coalescer, and the per-SM L1 data
//! cache with MSHRs.

use crate::coalesce::coalesce;
use crate::config::GpuConfig;
use crate::trace::{Instruction, KernelSource, WarpProgram};
use crate::txn::{TxnTable, NO_WARP};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};
use valley_cache::{CacheStats, MshrAllocation, MshrFile, SetAssocCache};
use valley_core::{AddressMapper, PhysAddr};

/// A NoC request emitted by an SM (to be injected by the GPU top level).
#[derive(Clone, Copy, Debug)]
pub(crate) struct SmOutbound {
    /// Transaction token.
    pub txn: u64,
    /// Packet size in flits.
    pub flits: u32,
}

struct TbState {
    warps_left: u32,
}

struct Warp {
    tb_slot: u32,
    /// TB assignment time: GTO's "oldest" order (ties broken by slot).
    age: u64,
    program: Box<dyn WarpProgram>,
    outstanding_loads: u32,
    finished: bool,
}

/// Per-SM issue and memory-path state.
pub(crate) struct Sm {
    id: u32,
    warps: Vec<Option<Warp>>,
    free_warp_slots: Vec<u32>,
    /// Warps able to issue, keyed by (age, slot) — GTO's oldest-first order.
    ready: BTreeSet<(u64, u32)>,
    /// Compute-stalled warps and their wake-up cycles.
    wake: BinaryHeap<Reverse<(u64, u32)>>,
    last_issued: Option<u32>,
    /// Coalesced transactions awaiting the L1 (LSU queue; 1/cycle).
    mem_queue: VecDeque<u64>,
    l1: SetAssocCache,
    mshr: MshrFile,
    /// L1 hits in flight: (ready cycle, txn).
    hit_queue: VecDeque<(u64, u64)>,
    tb_slots: Vec<Option<TbState>>,
    free_tb_slots: Vec<u32>,
    resident_tbs: usize,
    resident_warps: usize,
    // Statistics.
    warp_instructions: u64,
    busy_cycles: u64,
    retired_tbs: u64,
}

impl Sm {
    pub(crate) fn new(id: u32, cfg: &GpuConfig) -> Self {
        Sm {
            id,
            warps: (0..cfg.max_warps_per_sm).map(|_| None).collect(),
            free_warp_slots: (0..cfg.max_warps_per_sm as u32).rev().collect(),
            ready: BTreeSet::new(),
            wake: BinaryHeap::new(),
            last_issued: None,
            mem_queue: VecDeque::new(),
            l1: SetAssocCache::new(cfg.l1),
            mshr: MshrFile::new(cfg.l1_mshrs, cfg.l1_mshr_merges),
            hit_queue: VecDeque::new(),
            tb_slots: (0..cfg.max_tbs_per_sm).map(|_| None).collect(),
            free_tb_slots: (0..cfg.max_tbs_per_sm as u32).rev().collect(),
            resident_tbs: 0,
            resident_warps: 0,
            warp_instructions: 0,
            busy_cycles: 0,
            retired_tbs: 0,
        }
    }

    /// Whether this SM can accept a TB of `warps_per_block` warps, given
    /// the per-kernel residency limit.
    pub(crate) fn can_accept_tb(&self, warps_per_block: usize, tbs_limit: usize) -> bool {
        self.resident_tbs < tbs_limit
            && !self.free_tb_slots.is_empty()
            && self.free_warp_slots.len() >= warps_per_block
    }

    /// Assigns TB `tb` of `kernel`, creating its warps with age `age`.
    pub(crate) fn assign_tb(&mut self, kernel: &dyn KernelSource, tb: u64, age: u64) {
        let wpb = kernel.warps_per_block();
        let slot = self.free_tb_slots.pop().expect("caller checked capacity");
        self.tb_slots[slot as usize] = Some(TbState {
            warps_left: wpb as u32,
        });
        self.resident_tbs += 1;
        for w in 0..wpb {
            let ws = self.free_warp_slots.pop().expect("caller checked capacity");
            self.warps[ws as usize] = Some(Warp {
                tb_slot: slot,
                age,
                program: kernel.warp_program(tb, w),
                outstanding_loads: 0,
                finished: false,
            });
            self.ready.insert((age, ws));
            self.resident_warps += 1;
        }
    }

    /// TBs retired so far (monotone; the scheduler reads the total).
    pub(crate) fn retired_tbs(&self) -> u64 {
        self.retired_tbs
    }

    /// Whether the SM holds no warps and has no memory work in flight.
    pub(crate) fn is_idle(&self) -> bool {
        self.resident_warps == 0
            && self.mem_queue.is_empty()
            && self.hit_queue.is_empty()
            && self.mshr.is_empty()
    }

    pub(crate) fn l1_stats(&self) -> CacheStats {
        self.l1.stats()
    }

    pub(crate) fn warp_instructions(&self) -> u64 {
        self.warp_instructions
    }

    pub(crate) fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Handles an LLC reply for `txn`: fills the L1 line and wakes every
    /// merged waiter.
    pub(crate) fn on_reply(&mut self, txn: u64, txns: &TxnTable, cycle: u64) {
        let line = txns.get(txn).line;
        self.l1.fill(line);
        if let Some(waiters) = self.mshr.complete(line) {
            for w in waiters {
                self.complete_load(w, txns, cycle);
            }
        }
    }

    fn complete_load(&mut self, txn: u64, txns: &TxnTable, _cycle: u64) {
        let warp_idx = txns.get(txn).warp;
        debug_assert_ne!(warp_idx, NO_WARP, "stores never complete loads");
        let Some(warp) = self.warps[warp_idx as usize].as_mut() else {
            return;
        };
        debug_assert!(warp.outstanding_loads > 0);
        warp.outstanding_loads -= 1;
        if warp.outstanding_loads == 0 {
            if warp.finished {
                self.retire_warp(warp_idx);
            } else {
                let age = warp.age;
                self.ready.insert((age, warp_idx));
            }
        }
    }

    fn retire_warp(&mut self, warp_idx: u32) {
        let warp = self.warps[warp_idx as usize]
            .take()
            .expect("retiring a live warp");
        self.free_warp_slots.push(warp_idx);
        self.resident_warps -= 1;
        let tb = warp.tb_slot;
        let state = self.tb_slots[tb as usize]
            .as_mut()
            .expect("warp's TB is resident");
        state.warps_left -= 1;
        if state.warps_left == 0 {
            self.tb_slots[tb as usize] = None;
            self.free_tb_slots.push(tb);
            self.resident_tbs -= 1;
            self.retired_tbs += 1;
        }
    }

    /// One core cycle: wake compute-stalled warps, finish L1 hits, run the
    /// LSU, and issue up to `issue_width` instructions via GTO.
    pub(crate) fn tick(
        &mut self,
        cycle: u64,
        cfg: &GpuConfig,
        mapper: &AddressMapper,
        txns: &mut TxnTable,
        slice_of: &dyn Fn(PhysAddr) -> u16,
        outbound: &mut Vec<SmOutbound>,
    ) {
        if self.resident_warps > 0 {
            self.busy_cycles += 1;
        }

        // Wake compute-stalled warps.
        while let Some(&Reverse((when, w))) = self.wake.peek() {
            if when > cycle {
                break;
            }
            self.wake.pop();
            if let Some(warp) = self.warps[w as usize].as_ref() {
                debug_assert!(!warp.finished);
                self.ready.insert((warp.age, w));
            }
        }

        // L1 hit completions (FIFO: fixed latency).
        while let Some(&(ready, txn)) = self.hit_queue.front() {
            if ready > cycle {
                break;
            }
            self.hit_queue.pop_front();
            self.complete_load(txn, txns, cycle);
        }

        self.lsu_tick(cycle, cfg, mapper, txns, outbound);
        self.issue_tick(cycle, cfg, mapper, txns, slice_of);
    }

    /// The load-store unit: one coalesced transaction per cycle through
    /// the L1.
    fn lsu_tick(
        &mut self,
        cycle: u64,
        cfg: &GpuConfig,
        mapper: &AddressMapper,
        txns: &mut TxnTable,
        outbound: &mut Vec<SmOutbound>,
    ) {
        let Some(&txn) = self.mem_queue.front() else {
            return;
        };
        let info = txns.get(txn);
        if info.is_store {
            // Write-through, no-allocate: straight to the LLC, carrying data.
            self.mem_queue.pop_front();
            outbound.push(SmOutbound {
                txn,
                flits: valley_noc::DATA_FLITS,
            });
            return;
        }
        let line = info.line;
        if self.l1.probe(line) {
            self.mem_queue.pop_front();
            let lat = cfg.l1_hit_latency + mapper.latency_cycles() as u64;
            self.hit_queue.push_back((cycle + lat, txn));
            return;
        }
        match self.mshr.allocate(line, txn) {
            MshrAllocation::NewEntry => {
                self.mem_queue.pop_front();
                outbound.push(SmOutbound {
                    txn,
                    flits: valley_noc::REQUEST_FLITS,
                });
            }
            MshrAllocation::Merged => {
                self.mem_queue.pop_front();
            }
            MshrAllocation::Stalled => {
                // Head-of-line: resource stall, retry next cycle.
            }
        }
    }

    /// Warp issue: pick by the configured policy (GTO or LRR), up to
    /// `issue_width` distinct warps per cycle.
    fn issue_tick(
        &mut self,
        cycle: u64,
        cfg: &GpuConfig,
        mapper: &AddressMapper,
        txns: &mut TxnTable,
        slice_of: &dyn Fn(PhysAddr) -> u16,
    ) {
        let mut issued: Vec<u32> = Vec::with_capacity(cfg.issue_width);
        for _ in 0..cfg.issue_width {
            let pick = match cfg.scheduler {
                crate::config::WarpScheduler::Gto => self.pick_gto(&issued),
                crate::config::WarpScheduler::Lrr => self.pick_lrr(&issued),
            };
            let Some(w) = pick else { break };
            issued.push(w);
            self.issue_one(w, cycle, cfg, mapper, txns, slice_of);
        }
    }

    /// GTO: greedily stick with the last-issued warp, otherwise the
    /// oldest ready warp.
    fn pick_gto(&self, already: &[u32]) -> Option<u32> {
        if let Some(last) = self.last_issued {
            if !already.contains(&last) {
                if let Some(warp) = self.warps[last as usize].as_ref() {
                    if self.ready.contains(&(warp.age, last)) {
                        return Some(last);
                    }
                }
            }
        }
        self.ready
            .iter()
            .map(|&(_, w)| w)
            .find(|w| !already.contains(w))
    }

    /// Loose round-robin: the ready warp with the smallest slot index
    /// strictly greater than the last-issued slot, wrapping around.
    fn pick_lrr(&self, already: &[u32]) -> Option<u32> {
        let start = self.last_issued.map_or(0, |w| w + 1);
        let mut slots: Vec<u32> = self.ready.iter().map(|&(_, w)| w).collect();
        slots.sort_unstable();
        slots
            .iter()
            .copied()
            .find(|&w| w >= start && !already.contains(&w))
            .or_else(|| slots.into_iter().find(|w| !already.contains(w)))
    }

    fn issue_one(
        &mut self,
        w: u32,
        cycle: u64,
        cfg: &GpuConfig,
        mapper: &AddressMapper,
        txns: &mut TxnTable,
        slice_of: &dyn Fn(PhysAddr) -> u16,
    ) {
        let warp = self.warps[w as usize]
            .as_mut()
            .expect("ready warps are live");
        let age = warp.age;
        self.last_issued = Some(w);
        match warp.program.next_instruction() {
            None => {
                warp.finished = true;
                self.ready.remove(&(age, w));
                if warp.outstanding_loads == 0 {
                    self.retire_warp(w);
                }
            }
            Some(Instruction::Compute { cycles }) => {
                self.warp_instructions += 1;
                self.ready.remove(&(age, w));
                self.wake.push(Reverse((cycle + cycles.max(1) as u64, w)));
            }
            Some(Instruction::Load(lanes)) => {
                self.warp_instructions += 1;
                let lines = coalesce(&lanes, cfg.line_bytes);
                if lines.is_empty() {
                    // Degenerate empty access behaves like a 1-cycle op.
                    self.ready.remove(&(age, w));
                    self.wake.push(Reverse((cycle + 1, w)));
                    return;
                }
                warp.outstanding_loads = lines.len() as u32;
                self.ready.remove(&(age, w));
                for line in lines {
                    let mapped = mapper.map(PhysAddr::new(line));
                    let txn = txns.alloc(self.id, w, false, line, mapped, slice_of(mapped));
                    self.mem_queue.push_back(txn);
                }
            }
            Some(Instruction::Store(lanes)) => {
                self.warp_instructions += 1;
                // Fire-and-forget: the warp stays ready.
                for line in coalesce(&lanes, cfg.line_bytes) {
                    let mapped = mapper.map(PhysAddr::new(line));
                    let txn = txns.alloc(self.id, NO_WARP, true, line, mapped, slice_of(mapped));
                    self.mem_queue.push_back(txn);
                }
            }
        }
    }
}
