//! A minimal hand-rolled JSON value model, parser and writer.
//!
//! The workspace builds offline (no serde); this module is just enough
//! JSON for the harness's content-addressed result store and the
//! [`SimReport`](crate::SimReport) round-trip: objects, arrays, strings
//! with escapes, booleans, null, and numbers. Unsigned integers are kept
//! as exact `u64` (simulation counters exceed the 2^53 range where `f64`
//! starts dropping bits); everything else parses as `f64`.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer written without fraction or exponent —
    /// kept exact so `u64` counters survive the round trip.
    UInt(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving member order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The value of an object member, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as a `u64` (exact integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(u) => Some(u),
            _ => None,
        }
    }

    /// This value as an `f64` (accepts exact integers too).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(u) => Some(u as f64),
            Json::Num(x) => Some(x),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value on one line (no pretty-printing — the result
    /// store is a JSON-lines format).
    ///
    /// # Panics
    ///
    /// Panics on non-finite floats: NaN/infinity have no JSON encoding,
    /// and silently writing `null` would corrupt stored results.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Num(x) => {
                assert!(x.is_finite(), "cannot serialize non-finite number {x}");
                // `{:?}` prints the shortest representation that parses
                // back to the same f64.
                out.push_str(&format!("{x:?}"));
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// [`write`](Json::write) into a fresh string.
    pub fn to_json_string(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus a short description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            s.push(c);
                            // hex4 leaves pos past the digits; the outer
                            // loop's advance below would skip a char.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Decode the next UTF-8 scalar from the input slice.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = text.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_integer = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_integer = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_integer && !text.starts_with('-') {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Json::Num(x)),
            _ => Err(JsonError {
                pos: start,
                msg: format!("invalid number '{text}'"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for src in ["null", "true", "false", "0", "42", "18446744073709551615"] {
            let v = parse(src).unwrap();
            assert_eq!(v.to_json_string(), src);
        }
        assert_eq!(parse("1.5").unwrap(), Json::Num(1.5));
        assert_eq!(parse("-3").unwrap(), Json::Num(-3.0));
        assert_eq!(parse("1e3").unwrap(), Json::Num(1000.0));
    }

    #[test]
    fn u64_counters_stay_exact() {
        let big = u64::MAX - 1;
        let v = parse(&big.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(big));
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "line\nquote\"back\\slash\ttab";
        let v = Json::Str(s.to_string());
        let parsed = parse(&v.to_json_string()).unwrap();
        assert_eq!(parsed.as_str(), Some(s));
        assert_eq!(parse(r#""Aé""#).unwrap().as_str(), Some("Aé"));
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("\u{1f600}"));
    }

    #[test]
    fn objects_and_arrays() {
        let src = r#"{"a":[1,2.5,"x"],"b":{"c":true},"d":null}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert_eq!(v.to_json_string(), src);
    }

    #[test]
    fn errors_are_loud() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse(r#"{"a":1"#).is_err());
        assert!(parse("\"\u{1}\"").is_err());
        let e = parse("[true,?]").unwrap_err();
        assert!(e.to_string().contains("byte 6"), "{e}");
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_floats_refuse_to_serialize() {
        Json::Num(f64::NAN).to_json_string();
    }
}
