//! Simulated GPU configuration (Table I).

use valley_cache::CacheConfig;
use valley_dram::DramConfig;

/// Warp scheduling policy of the SM's issue stage.
///
/// The paper assumes GTO and sets the entropy window to the SM count
/// because GTO drains TBs roughly in assignment order; LRR is provided
/// for sensitivity studies (it interleaves older and younger TBs, which
/// widens the set of concurrently-issuing TBs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum WarpScheduler {
    /// Greedy-Then-Oldest (Rogers et al.): stick with the last-issued
    /// warp until it stalls, then pick the oldest ready warp.
    #[default]
    Gto,
    /// Loose round-robin over the ready warps.
    Lrr,
}

/// Write policy of the LLC slices.
///
/// The reproduction's default is write-through/no-allocate (simplest
/// model consistent with the paper's store behavior); write-back with
/// write-validate allocation is provided as a design-space knob — it
/// filters store traffic from DRAM at the cost of dirty-eviction
/// writebacks whose addresses the mapping scheme also spreads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum LlcWritePolicy {
    /// Stores update the LLC and are forwarded to DRAM immediately.
    #[default]
    WriteThrough,
    /// Stores allocate dirty lines; DRAM sees writes only on eviction.
    WriteBack,
}

/// Complete configuration of the simulated GPU (Table I).
///
/// The defaults reproduce the paper's baseline: 12 SMs at 1.4 GHz with 48
/// warps / 1536 threads each, GTO scheduling with 2 issue slots, a 16 KB
/// 4-way L1 with 32 MSHRs per SM, a 512 KB LLC in 8 slices (120-cycle
/// latency), a 12×8 crossbar at 700 MHz, and 4 GDDR5 channels at 924 MHz.
#[derive(Clone, Debug)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: usize,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: usize,
    /// Maximum resident thread blocks per SM.
    pub max_tbs_per_sm: usize,
    /// Threads per warp.
    pub warp_size: usize,
    /// Instructions issued per SM per cycle (2 warp schedulers).
    pub issue_width: usize,
    /// Warp scheduling policy (Table I: GTO).
    pub scheduler: WarpScheduler,
    /// Per-SM L1 data cache geometry.
    pub l1: CacheConfig,
    /// L1 MSHR entries per SM.
    pub l1_mshrs: usize,
    /// Maximum merged waiters per L1 MSHR entry.
    pub l1_mshr_merges: usize,
    /// L1 hit latency in core cycles.
    pub l1_hit_latency: u64,
    /// Number of LLC slices (2 per memory controller in the baseline).
    pub llc_slices: usize,
    /// Geometry of one LLC slice.
    pub llc_slice: CacheConfig,
    /// LLC access latency in core cycles (Table I: 120).
    pub llc_latency: u64,
    /// LLC write policy.
    pub llc_write_policy: LlcWritePolicy,
    /// LLC MSHR entries per slice.
    pub llc_mshrs: usize,
    /// Maximum merged waiters per LLC MSHR entry.
    pub llc_mshr_merges: usize,
    /// NoC router pipeline latency in NoC cycles.
    pub noc_router_latency: u64,
    /// Core clock in GHz.
    pub core_clock_ghz: f64,
    /// NoC clock in GHz (half the core clock in Table I).
    pub noc_clock_ghz: f64,
    /// DRAM channel configuration (also fixes the DRAM clock).
    pub dram: DramConfig,
    /// Cache line / memory transaction size in bytes.
    pub line_bytes: u64,
    /// Safety limit on simulated core cycles.
    pub max_cycles: u64,
}

impl GpuConfig {
    /// The paper's baseline configuration (Table I).
    pub fn table1() -> Self {
        GpuConfig {
            num_sms: 12,
            max_warps_per_sm: 48,
            max_threads_per_sm: 1536,
            max_tbs_per_sm: 8,
            warp_size: 32,
            issue_width: 2,
            scheduler: WarpScheduler::Gto,
            l1: CacheConfig::new(16 * 1024, 4, 128),
            l1_mshrs: 32,
            l1_mshr_merges: 8,
            l1_hit_latency: 24,
            llc_slices: 8,
            llc_slice: CacheConfig::new(64 * 1024, 8, 128),
            llc_latency: 120,
            llc_write_policy: LlcWritePolicy::WriteThrough,
            llc_mshrs: 64,
            llc_mshr_merges: 8,
            noc_router_latency: 4,
            core_clock_ghz: 1.4,
            noc_clock_ghz: 0.7,
            dram: DramConfig::gddr5(),
            line_bytes: 128,
            max_cycles: 200_000_000,
        }
    }

    /// The baseline with a different SM count (Figure 18's 12/24/48-SM
    /// sweep). The memory system is unchanged, as in the paper.
    pub fn with_sms(mut self, num_sms: usize) -> Self {
        assert!(num_sms > 0);
        self.num_sms = num_sms;
        self
    }

    /// The baseline with a different LLC write policy (ablation studies).
    pub fn with_llc_write_policy(mut self, policy: LlcWritePolicy) -> Self {
        self.llc_write_policy = policy;
        self
    }

    /// The baseline with a different warp scheduler (ablation studies).
    pub fn with_scheduler(mut self, scheduler: WarpScheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// The 3D-stacked configuration of Figure 18 (rightmost bars):
    /// 64 SMs, a wider NoC and 64 vault controllers. The LLC is kept at
    /// 8 slices as in the baseline; vaults are interleaved below them.
    pub fn stacked() -> Self {
        let mut cfg = GpuConfig::table1().with_sms(64);
        cfg.dram = DramConfig::stacked_vault();
        // "960 GB/s NoC": scale the NoC clock so 8 slices x 32 B keep up.
        cfg.noc_clock_ghz = 1.4;
        cfg
    }

    /// Resident TBs per SM for a kernel with `warps_per_block` warps.
    pub fn tbs_per_sm(&self, warps_per_block: usize) -> usize {
        assert!(
            warps_per_block > 0,
            "kernel must have at least one warp per TB"
        );
        let by_warps = self.max_warps_per_sm / warps_per_block;
        let by_threads = self.max_threads_per_sm / (warps_per_block * self.warp_size);
        by_warps.min(by_threads).min(self.max_tbs_per_sm).max(1)
    }

    /// DRAM cycles advanced per core cycle (clock-domain ratio).
    pub fn dram_per_core(&self) -> f64 {
        self.dram.clock_ghz / self.core_clock_ghz
    }

    /// NoC cycles advanced per core cycle.
    pub fn noc_per_core(&self) -> f64 {
        self.noc_clock_ghz / self.core_clock_ghz
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let c = GpuConfig::table1();
        assert_eq!(c.num_sms, 12);
        assert_eq!(c.l1.sets(), 32);
        assert_eq!(c.llc_slice.sets(), 64);
        // 8 slices x 64 KB = 512 KB total LLC.
        assert_eq!(c.llc_slices as u64 * c.llc_slice.size_bytes(), 512 * 1024);
        assert!((c.noc_per_core() - 0.5).abs() < 1e-12);
        assert!((c.dram_per_core() - 0.924 / 1.4).abs() < 1e-12);
    }

    #[test]
    fn tb_residency_limits() {
        let c = GpuConfig::table1();
        // 8 warps per TB (256 threads): min(48/8, 1536/256, 8) = 6.
        assert_eq!(c.tbs_per_sm(8), 6);
        // 2 warps per TB: min(24, 24, 8) = 8.
        assert_eq!(c.tbs_per_sm(2), 8);
        // Huge TB still gets one slot.
        assert_eq!(c.tbs_per_sm(64), 1);
    }

    #[test]
    fn sm_sweep_keeps_memory_system() {
        let c = GpuConfig::table1().with_sms(48);
        assert_eq!(c.num_sms, 48);
        assert_eq!(c.llc_slices, 8);
    }

    #[test]
    fn stacked_config() {
        let c = GpuConfig::stacked();
        assert_eq!(c.num_sms, 64);
        assert!((c.dram.clock_ghz - 1.25).abs() < 1e-9);
    }
}
