//! An LLC slice: tag array, MSHRs and the DRAM hand-off.
//!
//! The LLC is partitioned into 8 slices across the 4 memory controllers
//! (Table I); the slice index is derived from the *mapped* address, so
//! address mapping directly controls LLC-level parallelism (Figure 14a).
//!
//! Two write policies are supported (see
//! [`LlcWritePolicy`](crate::LlcWritePolicy)): write-through/no-allocate
//! (default) and write-back/write-validate, whose dirty evictions
//! generate their own DRAM writebacks.

use crate::config::{GpuConfig, LlcWritePolicy};
use crate::txn::{TxnTable, NO_WARP};
use std::collections::VecDeque;
use valley_cache::{CacheStats, MshrAllocation, MshrFile, SetAssocCache};
use valley_core::{AddressMapper, PhysAddr};
use valley_dram::DramSystem;

/// One LLC slice (64 KB, 8-way in the baseline; 120-cycle latency).
pub(crate) struct LlcSlice {
    /// This slice's index (needed to tag self-generated writeback txns).
    id: u16,
    cache: SetAssocCache,
    mshr: MshrFile,
    /// Transactions delivered by the NoC awaiting tag access.
    input: VecDeque<u64>,
    /// Hits in flight: (ready cycle, txn).
    hits: VecDeque<(u64, u64)>,
    /// Transactions waiting for a free DRAM queue slot.
    dram_retry: VecDeque<u64>,
    /// First core cycle whose stall-retry miss counter is still deferred.
    acct_from: u64,
    /// When `Some(v)`: the input head is MSHR-stalled and nothing that
    /// could unblock it has happened since version `v` (DRAM completions
    /// are the only events that free this slice's MSHRs or fill lines).
    input_stall: Option<u64>,
    /// Version counter for `input_stall`, incremented per completion.
    fill_version: u64,
    /// Cached earliest core cycle at which [`LlcSlice::tick`] does real
    /// work (`u64::MAX` = nothing locally schedulable); maintained by
    /// [`LlcSlice::tick_evented`] and invalidated by deliveries and DRAM
    /// completions.
    cached_next: u64,
    /// `Some(gate)` while the DRAM-retry head is known to be
    /// back-pressured: the head cannot enqueue before core cycle `gate`
    /// (the channel-event translation the last failed attempt computed).
    /// `None` means the head — if any — has not been attempted since it
    /// became the head and gates at the next cycle. Maintained by
    /// [`LlcSlice::tick`] step 2, so [`LlcSlice::tick_evented`] updates
    /// `cached_next` from this delta instead of re-deriving the gate
    /// through the transaction table and the DRAM channel on every
    /// effective tick (the recompute was ~10% of an MT/PAE run).
    retry_gate: Option<u64>,
}

impl LlcSlice {
    pub(crate) fn new(id: u16, cfg: &GpuConfig) -> Self {
        LlcSlice {
            id,
            cache: SetAssocCache::new(cfg.llc_slice),
            mshr: MshrFile::new(cfg.llc_mshrs, cfg.llc_mshr_merges),
            // Steady-state sized up front: every simulation run builds
            // fresh slices, and letting the queues grow from zero pays a
            // doubling-realloc ladder per run, per slice.
            input: VecDeque::with_capacity(64),
            hits: VecDeque::with_capacity(32),
            dram_retry: VecDeque::with_capacity(32),
            acct_from: 0,
            input_stall: None,
            fill_version: 0,
            cached_next: 0,
            retry_gate: None,
        }
    }

    /// Accepts a transaction delivered by the request NoC.
    pub(crate) fn deliver(&mut self, txn: u64) {
        let _audit_pause =
            (self.input.len() == self.input.capacity()).then(valley_core::alloc_audit::pause);
        self.input.push_back(txn);
        self.cached_next = 0;
    }

    /// Outstanding requests in this slice (the Figure 14a busy criterion).
    pub(crate) fn outstanding(&self) -> usize {
        self.input.len() + self.hits.len() + self.dram_retry.len() + self.mshr.len()
    }

    pub(crate) fn is_idle(&self) -> bool {
        self.outstanding() == 0
    }

    pub(crate) fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The earliest core cycle at or after `now` at which
    /// [`LlcSlice::tick`] would do real work, or `None` when the slice can
    /// only progress through off-slice events (DRAM completions filling
    /// MSHRs). Ticks before that cycle are no-ops.
    /// `next_event_at` with visibility into the DRAM system: a slice
    /// whose only pending work is a back-pressured DRAM hand-off cannot
    /// progress before the target channel's next event (channel queues
    /// drain only on channel ticks), so the gate extends to a
    /// conservative core-cycle translation of that event.
    ///
    /// This is the recompute-from-scratch **oracle**: the hot path
    /// ([`LlcSlice::tick_evented`]) maintains the same value
    /// incrementally from the hit-queue/retry-head deltas of the tick it
    /// just ran (see [`LlcSlice::next_event_incremental`]); a property
    /// test pins the two against each other.
    pub(crate) fn next_event_at_with_dram(
        &self,
        now: u64,
        txns: &TxnTable,
        dram: &DramSystem,
        dram_now: u64,
    ) -> Option<u64> {
        if !self.input.is_empty() && !self.input_stalled_now() {
            return Some(now);
        }
        let mut next: Option<u64> = None;
        if let Some(&txn) = self.dram_retry.front() {
            let at = match txns.get(txn).coords {
                // The head was already decoded, so at least one enqueue
                // attempt failed; the channel queue must drain first.
                Some((ctrl, _, _)) => {
                    let ch = dram.channel(ctrl as usize);
                    if ch.queue_len() < ch.config().queue_capacity {
                        now
                    } else {
                        let cn = dram.channel_next_event(ctrl as usize);
                        if cn == u64::MAX || cn <= dram_now {
                            now
                        } else {
                            // `d` DRAM cycles take at least `d` core
                            // cycles (the DRAM clock is never faster than
                            // the core clock in any supported config) —
                            // an early, never-late estimate.
                            now + (cn - dram_now)
                        }
                    }
                }
                None => now,
            };
            if at == now {
                return Some(now);
            }
            next = Some(at);
        }
        if let Some(&(ready, _)) = self.hits.front() {
            let at = ready.max(now);
            next = Some(next.map_or(at, |n| n.min(at)));
        }
        next
    }

    /// Whether the input head is known to be MSHR-stalled with nothing
    /// having happened that could unblock it.
    #[inline]
    fn input_stalled_now(&self) -> bool {
        self.input_stall == Some(self.fill_version)
    }

    /// Replays the deferred one-retry-miss-per-cycle accounting for
    /// elided stalled cycles up to `up_to` (exclusive).
    pub(crate) fn flush_stall(&mut self, up_to: u64) {
        if up_to > self.acct_from {
            if self.input_stalled_now() {
                self.cache.record_retry_misses(up_to - self.acct_from);
            }
            self.acct_from = up_to;
        }
    }

    /// Creates a DRAM writeback transaction for a dirty victim line.
    fn emit_writeback(&mut self, victim: u64, txns: &mut TxnTable, mapper: &AddressMapper) {
        let mapped = mapper.map(PhysAddr::new(victim));
        let wb = txns.alloc(0, NO_WARP, true, victim, mapped, self.id);
        let _audit_pause = (self.dram_retry.len() == self.dram_retry.capacity())
            .then(valley_core::alloc_audit::pause);
        self.dram_retry.push_back(wb);
    }

    /// A DRAM read completed: fill the line and emit replies for every
    /// merged waiter into `replies`. A dirty victim (write-back policy)
    /// becomes a DRAM writeback.
    pub(crate) fn on_dram_completion(
        &mut self,
        txn: u64,
        cycle: u64,
        txns: &mut TxnTable,
        mapper: &AddressMapper,
        replies: &mut Vec<u64>,
    ) {
        // Settle the deferred stall accounting before the fill makes the
        // stall verdict stale (the elided cycles were stalled ones).
        self.flush_stall(cycle);
        self.cached_next = 0;
        self.fill_version += 1;
        let line = txns.get(txn).line;
        if let Some(ev) = self.cache.fill_with(line, false) {
            if ev.dirty {
                self.emit_writeback(ev.line, txns, mapper);
            }
        }
        self.mshr.complete_into(line, replies);
    }

    /// The cached next-event cycle maintained by
    /// [`LlcSlice::tick_evented`].
    #[inline]
    pub(crate) fn cached_next_event(&self) -> u64 {
        self.cached_next
    }

    /// The earliest core cycle at which a [`LlcSlice::tick`] could emit
    /// a *reply* without an intervening DRAM completion: the ready time
    /// of the oldest in-flight hit (`u64::MAX` when none). All other
    /// reply paths go through DRAM first — a tag probe books its hit
    /// `llc_latency` (120) cycles out, far beyond any epoch — so the
    /// phase-parallel safe horizon bounds in-epoch reply emissions by
    /// this peek plus the DRAM-side terms; see `crate::par`.
    #[inline]
    pub(crate) fn next_reply_at(&self) -> u64 {
        self.hits.front().map_or(u64::MAX, |&(ready, _)| ready)
    }

    /// The DRAM back-pressure gate [`LlcSlice::tick`] step 2 maintains
    /// (`None` = the retry head, if any, has not been attempted yet) —
    /// surfaced so the wake-gate subsystem's recompute oracles can check
    /// the shared index against the slice's own bookkeeping.
    #[cfg(test)]
    pub(crate) fn retry_gate(&self) -> Option<u64> {
        self.retry_gate
    }

    /// The post-tick `cached_next` value, derived incrementally: the
    /// input-head and hit-queue terms are O(1) peeks, and the DRAM
    /// back-pressure term reuses the gate [`LlcSlice::tick`] step 2 just
    /// computed (while it already held the channel) instead of
    /// re-deriving it through the transaction table and the channel's
    /// event cache. Must equal
    /// `next_event_at_with_dram(cycle + 1, ..)` at every effective-tick
    /// boundary — pinned by the `retry_gate` property test.
    #[inline]
    fn next_event_incremental(&self, cycle: u64) -> u64 {
        let now = cycle + 1;
        if !self.input.is_empty() && !self.input_stalled_now() {
            return now;
        }
        let mut next = u64::MAX;
        if !self.dram_retry.is_empty() {
            // A blocked head gates at the channel-event translation its
            // failed attempt computed; a fresh (unattempted) head gates
            // at the next cycle, like the oracle's undecoded branch.
            next = self.retry_gate.unwrap_or(now);
            debug_assert!(next >= now, "retry gate must not be in the past");
        }
        if let Some(&(ready, _)) = self.hits.front() {
            next = next.min(ready.max(now));
        }
        next
    }

    /// Event-gated [`LlcSlice::tick`]: a no-op while the cached
    /// next-event cycle is in the future (the slice has no per-cycle
    /// counters, so there is nothing to defer). Bit-identical to ticking
    /// densely every cycle.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn tick_evented(
        &mut self,
        cycle: u64,
        dram_now: u64,
        cfg: &GpuConfig,
        dram: &mut DramSystem,
        txns: &mut TxnTable,
        mapper: &AddressMapper,
        replies: &mut Vec<u64>,
    ) {
        if cycle < self.cached_next {
            return;
        }
        self.flush_stall(cycle);
        self.tick(cycle, dram_now, cfg, dram, txns, mapper, replies);
        self.cached_next = self.next_event_incremental(cycle);
        debug_assert_eq!(
            self.cached_next,
            self.next_event_at_with_dram(cycle + 1, txns, dram, dram_now)
                .unwrap_or(u64::MAX),
            "incremental next-event diverged from the recompute oracle"
        );
    }

    /// One core cycle: complete hits, retry DRAM hand-offs, process one
    /// new transaction. Load hits produce replies; misses go to DRAM.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn tick(
        &mut self,
        cycle: u64,
        dram_now: u64,
        cfg: &GpuConfig,
        dram: &mut DramSystem,
        txns: &mut TxnTable,
        mapper: &AddressMapper,
        replies: &mut Vec<u64>,
    ) {
        debug_assert!(cycle >= self.acct_from, "ticking an already-counted cycle");
        self.acct_from = cycle + 1;
        // 1. Hits whose latency elapsed.
        while let Some(&(ready, txn)) = self.hits.front() {
            if ready > cycle {
                break;
            }
            self.hits.pop_front();
            replies.push(txn);
        }

        // 2. Drain the DRAM retry queue while the channel accepts. Each
        // head outcome updates `retry_gate`: a pop exposes a fresh head
        // (gate unknown → next cycle); a failure records the blocked
        // head's exact resume bound while the channel is already at hand.
        while let Some(&txn) = self.dram_retry.front() {
            let t = txns.get_mut(txn);
            let (ctrl, bank, row) = match t.coords {
                Some(c) => c,
                None => {
                    let c = dram.decode(t.mapped);
                    t.coords = Some(c);
                    c
                }
            };
            if dram.try_enqueue_at(ctrl, bank, row, txn, t.is_store, dram_now) {
                self.dram_retry.pop_front();
                self.retry_gate = None;
            } else {
                // The queue is full; it cannot drain before the channel's
                // next event. `d` DRAM cycles take at least `d` core
                // cycles (the DRAM clock is never faster than the core
                // clock in any supported config) — an early, never-late
                // translation, identical to the recompute oracle's.
                let cn = dram.channel_next_event(ctrl as usize);
                self.retry_gate = Some(if cn <= dram_now {
                    cycle + 1
                } else {
                    cycle + 1 + (cn - dram_now)
                });
                break;
            }
        }

        // 3. Tag access: one transaction per cycle.
        let Some(&txn) = self.input.front() else {
            return;
        };
        if let Some(v) = self.input_stall {
            if v == self.fill_version {
                // Still MSHR-stalled: replay the probe's miss counter
                // (the dense retry would probe, miss and stall again).
                self.cache.record_retry_miss();
                return;
            }
            self.input_stall = None;
        }
        let t = *txns.get(txn);
        if self.cache.probe(t.line) {
            self.input.pop_front();
            if t.is_store {
                match cfg.llc_write_policy {
                    LlcWritePolicy::WriteThrough => {
                        // Update the line, forward the write.
                        let _audit_pause = (self.dram_retry.len() == self.dram_retry.capacity())
                            .then(valley_core::alloc_audit::pause);
                        self.dram_retry.push_back(txn);
                    }
                    LlcWritePolicy::WriteBack => {
                        self.cache.mark_dirty(t.line);
                    }
                }
            } else {
                let _audit_pause =
                    (self.hits.len() == self.hits.capacity()).then(valley_core::alloc_audit::pause);
                self.hits.push_back((cycle + cfg.llc_latency, txn));
            }
            return;
        }
        if t.is_store {
            self.input.pop_front();
            match cfg.llc_write_policy {
                LlcWritePolicy::WriteThrough => {
                    // Write no-allocate: straight to DRAM.
                    let _audit_pause = (self.dram_retry.len() == self.dram_retry.capacity())
                        .then(valley_core::alloc_audit::pause);
                    self.dram_retry.push_back(txn);
                }
                LlcWritePolicy::WriteBack => {
                    // Write-validate allocation: install dirty, no fetch.
                    if let Some(ev) = self.cache.fill_with(t.line, true) {
                        if ev.dirty {
                            self.emit_writeback(ev.line, txns, mapper);
                        }
                    }
                }
            }
            return;
        }
        match self.mshr.allocate(t.line, txn) {
            MshrAllocation::NewEntry => {
                self.input.pop_front();
                let _audit_pause = (self.dram_retry.len() == self.dram_retry.capacity())
                    .then(valley_core::alloc_audit::pause);
                self.dram_retry.push_back(txn);
            }
            MshrAllocation::Merged => {
                self.input.pop_front();
            }
            MshrAllocation::Stalled => {
                // Head-of-line stall: cache the verdict until the next
                // DRAM completion, so retries cost one counter update.
                self.input_stall = Some(self.fill_version);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::NO_WARP;
    use proptest::prelude::*;
    use valley_core::{GddrMap, SchemeKind};
    use valley_dram::DramConfig;

    // Random slice traffic: the incrementally-maintained next-event
    // cache must equal the recompute-from-scratch oracle after every
    // effective tick — including the DRAM back-pressure translation,
    // which is the term the incremental path avoids re-deriving.
    proptest! {
        #[test]
        fn incremental_next_event_matches_oracle(
            seed in 0u64..u64::MAX,
            txn_count in 1usize..60,
            burst in 1u64..6,
        ) {
            let cfg = GpuConfig::table1();
            let map = GddrMap::baseline();
            let mapper = AddressMapper::build(SchemeKind::Base, &map, 1);
            // A tiny queue so back-pressure (the retry-gate path) is hit
            // often, not only under saturation.
            let mut dram_cfg: DramConfig = cfg.dram;
            dram_cfg.queue_capacity = 4;
            let mut dram = DramSystem::for_controllers(
                std::sync::Arc::new(map),
                dram_cfg,
                &(0..4).collect::<Vec<_>>(),
            );
            let mut txns = TxnTable::new();
            let mut slice = LlcSlice::new(0, &cfg);
            let mut replies = Vec::new();
            let mut completions: Vec<valley_dram::DramCompletion> = Vec::new();

            let mut s = seed;
            let mut next_mix = || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            };
            let mut pending = txn_count;
            let dram_per_core = cfg.dram_per_core();
            let mut dram_acc = 0.0f64;
            let mut dram_cycle = 0u64;
            for cycle in 0..6_000u64 {
                // DRAM domain, as the GPU loop drives it.
                dram_acc += dram_per_core;
                while dram_acc >= 1.0 {
                    dram_acc -= 1.0;
                    completions.clear();
                    dram.tick_evented(dram_cycle, &mut completions);
                    for c in &completions {
                        if !txns.get(c.id).is_store {
                            slice.on_dram_completion(c.id, cycle, &mut txns, &mapper, &mut replies);
                        }
                    }
                    dram_cycle += 1;
                }
                // Random delivery bursts (hot lines force MSHR merges and
                // stalls; random stores exercise the write-through path).
                if pending > 0 && next_mix() % 3 == 0 {
                    for _ in 0..burst.min(pending as u64) {
                        let r = next_mix();
                        let line = (r % 64) << 7;
                        let is_store = r % 5 == 0;
                        let mapped = mapper.map(valley_core::PhysAddr::new(line));
                        let id = txns.alloc(0, if is_store { NO_WARP } else { 0 }, is_store, line, mapped, 0);
                        slice.deliver(id);
                        pending -= 1;
                    }
                }
                if cycle >= slice.cached_next_event() {
                    slice.flush_stall(cycle);
                    slice.tick(cycle, dram_cycle, &cfg, &mut dram, &mut txns, &mapper, &mut replies);
                    let incremental = slice.next_event_incremental(cycle);
                    slice.cached_next = incremental;
                    let oracle = slice
                        .next_event_at_with_dram(cycle + 1, &txns, &dram, dram_cycle)
                        .unwrap_or(u64::MAX);
                    prop_assert_eq!(
                        incremental, oracle,
                        "cycle {}: incremental {} vs oracle {}", cycle, incremental, oracle
                    );
                    // The retry gate feeds the wake-gate subsystem
                    // through `cached_next`: a blocked DRAM hand-off
                    // must never gate in the past, and the slice's
                    // published gate can never sit beyond it.
                    if let Some(g) = slice.retry_gate() {
                        prop_assert!(g > cycle, "cycle {}: retry gate {} in the past", cycle, g);
                        prop_assert!(
                            incremental <= g,
                            "cycle {}: published gate {} ignores the blocked retry head at {}",
                            cycle, incremental, g
                        );
                    }
                }
                replies.clear();
                if pending == 0 && slice.is_idle() && !dram.is_busy() {
                    break;
                }
            }
            prop_assert!(pending == 0, "traffic never fully delivered");
        }
    }
}
