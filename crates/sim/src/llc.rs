//! An LLC slice: tag array, MSHRs and the DRAM hand-off.
//!
//! The LLC is partitioned into 8 slices across the 4 memory controllers
//! (Table I); the slice index is derived from the *mapped* address, so
//! address mapping directly controls LLC-level parallelism (Figure 14a).
//!
//! Two write policies are supported (see
//! [`LlcWritePolicy`](crate::LlcWritePolicy)): write-through/no-allocate
//! (default) and write-back/write-validate, whose dirty evictions
//! generate their own DRAM writebacks.

use crate::config::{GpuConfig, LlcWritePolicy};
use crate::txn::{TxnTable, NO_WARP};
use std::collections::VecDeque;
use valley_core::{AddressMapper, PhysAddr};
use valley_cache::{CacheStats, MshrAllocation, MshrFile, SetAssocCache};
use valley_dram::DramSystem;

/// One LLC slice (64 KB, 8-way in the baseline; 120-cycle latency).
pub(crate) struct LlcSlice {
    /// This slice's index (needed to tag self-generated writeback txns).
    id: u16,
    cache: SetAssocCache,
    mshr: MshrFile,
    /// Transactions delivered by the NoC awaiting tag access.
    input: VecDeque<u64>,
    /// Hits in flight: (ready cycle, txn).
    hits: VecDeque<(u64, u64)>,
    /// Transactions waiting for a free DRAM queue slot.
    dram_retry: VecDeque<u64>,
}

impl LlcSlice {
    pub(crate) fn new(id: u16, cfg: &GpuConfig) -> Self {
        LlcSlice {
            id,
            cache: SetAssocCache::new(cfg.llc_slice),
            mshr: MshrFile::new(cfg.llc_mshrs, cfg.llc_mshr_merges),
            input: VecDeque::new(),
            hits: VecDeque::new(),
            dram_retry: VecDeque::new(),
        }
    }

    /// Accepts a transaction delivered by the request NoC.
    pub(crate) fn deliver(&mut self, txn: u64) {
        self.input.push_back(txn);
    }

    /// Outstanding requests in this slice (the Figure 14a busy criterion).
    pub(crate) fn outstanding(&self) -> usize {
        self.input.len() + self.hits.len() + self.dram_retry.len() + self.mshr.len()
    }

    pub(crate) fn is_idle(&self) -> bool {
        self.outstanding() == 0
    }

    pub(crate) fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Creates a DRAM writeback transaction for a dirty victim line.
    fn emit_writeback(&mut self, victim: u64, txns: &mut TxnTable, mapper: &AddressMapper) {
        let mapped = mapper.map(PhysAddr::new(victim));
        let wb = txns.alloc(0, NO_WARP, true, victim, mapped, self.id);
        self.dram_retry.push_back(wb);
    }

    /// A DRAM read completed: fill the line and emit replies for every
    /// merged waiter into `replies`. A dirty victim (write-back policy)
    /// becomes a DRAM writeback.
    pub(crate) fn on_dram_completion(
        &mut self,
        txn: u64,
        txns: &mut TxnTable,
        mapper: &AddressMapper,
        replies: &mut Vec<u64>,
    ) {
        let line = txns.get(txn).line;
        if let Some(ev) = self.cache.fill_with(line, false) {
            if ev.dirty {
                self.emit_writeback(ev.line, txns, mapper);
            }
        }
        if let Some(waiters) = self.mshr.complete(line) {
            replies.extend(waiters);
        }
    }

    /// One core cycle: complete hits, retry DRAM hand-offs, process one
    /// new transaction. Load hits produce replies; misses go to DRAM.
    pub(crate) fn tick(
        &mut self,
        cycle: u64,
        dram_now: u64,
        cfg: &GpuConfig,
        dram: &mut DramSystem,
        txns: &mut TxnTable,
        mapper: &AddressMapper,
        replies: &mut Vec<u64>,
    ) {
        // 1. Hits whose latency elapsed.
        while let Some(&(ready, txn)) = self.hits.front() {
            if ready > cycle {
                break;
            }
            self.hits.pop_front();
            replies.push(txn);
        }

        // 2. Drain the DRAM retry queue while the channel accepts.
        while let Some(&txn) = self.dram_retry.front() {
            let t = txns.get(txn);
            if dram.try_enqueue(t.mapped, txn, t.is_store, dram_now) {
                self.dram_retry.pop_front();
            } else {
                break;
            }
        }

        // 3. Tag access: one transaction per cycle.
        let Some(&txn) = self.input.front() else {
            return;
        };
        let t = *txns.get(txn);
        if self.cache.probe(t.line) {
            self.input.pop_front();
            if t.is_store {
                match cfg.llc_write_policy {
                    LlcWritePolicy::WriteThrough => {
                        // Update the line, forward the write.
                        self.dram_retry.push_back(txn);
                    }
                    LlcWritePolicy::WriteBack => {
                        self.cache.mark_dirty(t.line);
                    }
                }
            } else {
                self.hits.push_back((cycle + cfg.llc_latency, txn));
            }
            return;
        }
        if t.is_store {
            self.input.pop_front();
            match cfg.llc_write_policy {
                LlcWritePolicy::WriteThrough => {
                    // Write no-allocate: straight to DRAM.
                    self.dram_retry.push_back(txn);
                }
                LlcWritePolicy::WriteBack => {
                    // Write-validate allocation: install dirty, no fetch.
                    if let Some(ev) = self.cache.fill_with(t.line, true) {
                        if ev.dirty {
                            self.emit_writeback(ev.line, txns, mapper);
                        }
                    }
                }
            }
            return;
        }
        match self.mshr.allocate(t.line, txn) {
            MshrAllocation::NewEntry => {
                self.input.pop_front();
                self.dram_retry.push_back(txn);
            }
            MshrAllocation::Merged => {
                self.input.pop_front();
            }
            MshrAllocation::Stalled => {
                // Head-of-line stall; retry next cycle.
            }
        }
    }
}
