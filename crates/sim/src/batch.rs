//! The batched many-sim engine: N independent simulations ("lanes")
//! advanced through the sequential evented tick discipline in lockstep.
//!
//! # Why batch
//!
//! A sweep grid's dominant axis is seeds × benchmarks over *identical*
//! machine configurations: every job replays the same control flow over
//! different data. Run one job at a time and each pays the full
//! instruction-stream, branch-history and config-cache-line cost from
//! cold. [`BatchSim`] amortizes those: all lanes share one
//! [`GpuConfig`](crate::GpuConfig) allocation and one address map (see
//! [`GpuSim::with_shared`]), and the driver walks the *same* engine code
//! across the lanes cycle by cycle, so the hot loop's code and the
//! shared immutable state stay resident while only the per-lane SoA
//! state differs — the CPU analogue of dispatch-wide data parallelism.
//!
//! # Lockstep discipline
//!
//! All lanes agree on the three clock ratios and the cycle safety limit
//! (enforced by [`BatchSim::new`]), so one shared set of clock
//! accumulators — replaying exactly the dense loop's arithmetic — serves
//! every lane. The driver alternates two phases:
//!
//! * **Shared fast-forward** — when *every* active lane is provably
//!   quiet (its wake gates, NoC/DRAM next-event caches and TB scheduler
//!   all agree nothing can happen), the clocks skip to the earliest
//!   event over all lanes, exactly like the sequential engine's
//!   `fast_forward` with the minima taken across lanes.
//! * **Lockstep epochs** — when some lane has work, the batch advances
//!   one fixed-size epoch of core cycles. Lanes are mutually
//!   independent and the clock trajectory is a pure function of the
//!   cycle index, so within the epoch each lane runs *alone* on a local
//!   clock cursor (bit-exact replay of the shared arithmetic): its own
//!   dense/skip loop, re-checking its quiet conditions per cycle (the
//!   same four the sequential fast-forward uses: NoC window, DRAM
//!   window, core-domain [`WakeGate`]s, scheduler verdict). This keeps
//!   a dense lane's working set cache-hot for a whole epoch instead of
//!   evicting it every cycle. A lane that is provably quiet for the
//!   entire epoch is skipped in O(1) — the quiet predicate is monotone
//!   in the clock windows, so holding at the epoch-end horizons covers
//!   every cycle in it. Frozen metric samples of quiet spans are
//!   accounted lazily on wake, with the same `sample_n` bulk form the
//!   sequential engine uses.
//! * **Early exit** — a lane whose workload completes builds its
//!   [`SimReport`] immediately (with the clock values at that instant,
//!   which equal its solo run's) and drops out of the active set;
//!   remaining lanes keep ticking.
//!
//! A lane executes a cycle body if and only if its solo sequential run
//! would have executed that cycle densely — the quiet predicate is the
//! sequential fast-forward's skip predicate evaluated per lane — so
//! every lane's state trajectory, and therefore its report, is
//! **bit-identical** to [`GpuSim::run`] on the sequential evented
//! engine (pinned by `tests/event_driven_equivalence.rs` and the
//! randomized battery in `crates/sim/tests/batch_equivalence.rs`).
//! Batch width is pure scheduling: it trades wall time, never results,
//! which is why the harness keeps it out of job keys.

use crate::gpu::{domain_ticks, GpuSim, Parallelism, TbScheduler, METRIC_SAMPLE_INTERVAL};
use crate::metrics::{ParallelismIntegrator, SimReport};
use crate::sm::SmOutbound;
use crate::wake::WakeGate;
use std::sync::Arc;
use valley_core::PhysAddr;
use valley_noc::Packet;

/// Batch-width knob for the harness's sweep executor (see
/// [`BatchSim`]): how many same-config jobs to drive through one
/// lockstep batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Batching(pub usize);

impl Batching {
    /// Reads `VALLEY_SIM_BATCH`: unset, empty, `0` or `1` mean no
    /// batching (width 1); `n > 1` means lockstep batches of up to `n`
    /// lanes.
    ///
    /// # Panics
    ///
    /// Panics on a value that is not a non-negative integer, so a typo'd
    /// environment cannot silently fall back to unbatched runs.
    pub fn from_env() -> Self {
        match std::env::var("VALLEY_SIM_BATCH") {
            Err(_) => Batching(1),
            Ok(s) if s.is_empty() => Batching(1),
            Ok(s) => {
                let n: usize = s
                    .parse()
                    .unwrap_or_else(|_| panic!("VALLEY_SIM_BATCH={s} is not an integer"));
                Batching(n.max(1))
            }
        }
    }

    /// The batch width this knob requests (1 = unbatched).
    pub fn width(self) -> usize {
        self.0.max(1)
    }
}

/// N simulations advanced in lockstep — see the module docs.
///
/// Lanes may differ in mapper, seed and workload; they must agree on
/// the clock ratios and cycle limit (the shared clock state). Build the
/// lanes with [`GpuSim::with_shared`] so the config and address map are
/// genuinely shared allocations.
///
/// ```no_run
/// use valley_sim::BatchSim;
/// # fn sims() -> Vec<valley_sim::GpuSim> { unimplemented!() }
/// let reports = BatchSim::new(sims()).run();
/// ```
pub struct BatchSim {
    sims: Vec<GpuSim>,
}

impl BatchSim {
    /// Wraps `sims` as the lanes of one lockstep batch.
    ///
    /// # Panics
    ///
    /// Panics if `sims` is empty or the lanes disagree on a clock or on
    /// `max_cycles` (the shared lockstep state).
    pub fn new(sims: Vec<GpuSim>) -> Self {
        assert!(!sims.is_empty(), "a batch needs at least one lane");
        let first = Arc::clone(&sims[0].cfg);
        for s in &sims[1..] {
            assert!(
                s.cfg.core_clock_ghz == first.core_clock_ghz
                    && s.cfg.noc_clock_ghz == first.noc_clock_ghz
                    && s.cfg.dram.clock_ghz == first.dram.clock_ghz
                    && s.cfg.max_cycles == first.max_cycles,
                "batch lanes must agree on clocks and the cycle limit"
            );
        }
        BatchSim { sims }
    }

    /// Number of lanes.
    pub fn width(&self) -> usize {
        self.sims.len()
    }

    /// Runs every lane to completion and returns the per-lane reports in
    /// lane order — each bit-identical to what that lane's
    /// [`GpuSim::run`] would have produced on the sequential evented
    /// engine.
    pub fn run(self) -> Vec<SimReport> {
        let cfg = Arc::clone(&self.sims[0].cfg);
        // One lane has nothing to amortize; a clock envelope outside the
        // evented discipline (a domain faster than the core clock) is
        // handled by the sequential engine's own dense fallback. Either
        // way: per-lane sequential runs, bit-identical by definition.
        if self.sims.len() == 1 || cfg.noc_per_core() > 1.0 || cfg.dram_per_core() > 1.0 {
            return self
                .sims
                .into_iter()
                .map(|s| s.run_with(Parallelism::Off))
                .collect();
        }
        run_lockstep(self.sims)
    }
}

/// Reusable hot-loop buffers, shared by every lane (each use fully
/// drains or clears them, so nothing leaks across lanes).
struct Scratch {
    deliveries: Vec<valley_noc::Delivery>,
    completions: Vec<valley_dram::DramCompletion>,
    replies: Vec<u64>,
    outbound: Vec<SmOutbound>,
    banks_buf: Vec<usize>,
}

/// One lane: a full simulator plus the per-run state the sequential
/// engine keeps in locals (scheduler, metric integrator, wake gates,
/// the cached scheduler verdict) and the lazy-sample watermark.
struct Lane {
    sim: GpuSim,
    sched: TbScheduler,
    parallelism: ParallelismIntegrator,
    sms_next: WakeGate,
    slices_next: WakeGate,
    /// Cached negative `can_progress` verdict (see the sequential
    /// engine's `sched_quiet`): exact until the lane body runs the TB
    /// scheduler again, because quiet cycles touch no lane state.
    sched_quiet: bool,
    /// First cycle whose metric sample is not yet accounted: every
    /// cycle in `[idle_from, now)` was lane-quiet, so all elapsed
    /// sampling points see the identical frozen state and are accounted
    /// in bulk when the lane next wakes (or terminates).
    idle_from: u64,
    /// Cached event horizons, valid while the lane is untouched (quiet
    /// cycles mutate nothing, so the cached values stay *identical* to
    /// a fresh read — this is pure driver economics, not an
    /// approximation). Refreshed after every cycle body. The driver
    /// consults these every shared cycle for every lane; reading three
    /// plain words here beats chasing into the nets, the DRAM system
    /// and the wake gates each time.
    ev_noc: u64,
    ev_dram: u64,
    ev_core: u64,
}

impl Lane {
    /// Earliest NoC-domain event over both nets.
    #[inline]
    fn noc_next(&self) -> u64 {
        self.sim
            .req_net
            .cached_next_event()
            .min(self.sim.reply_net.cached_next_event())
    }

    /// Earliest core-domain event over the SM and slice wake gates.
    #[inline]
    fn core_next(&self) -> u64 {
        self.sms_next.get().min(self.slices_next.get())
    }

    /// Recomputes the cached event horizons from the lane's live state.
    fn refresh_events(&mut self) {
        self.ev_noc = self.noc_next();
        self.ev_dram = self.sim.dram.cached_next_event();
        self.ev_core = self.core_next();
    }

    /// The sequential fast-forward's skip predicate, evaluated for this
    /// lane at the shared cycle: `true` iff executing the cycle body
    /// would provably do nothing. Caches a negative scheduler verdict
    /// exactly like the sequential engine (only after every clock
    /// condition passed, mirroring its early-return order).
    fn is_quiet(&mut self, cycle: u64, noc_cycle: u64, nt: u64, dram_cycle: u64, dt: u64) -> bool {
        if noc_cycle + nt > self.ev_noc {
            return false;
        }
        if dram_cycle + dt > self.ev_dram {
            return false;
        }
        if self.ev_core <= cycle {
            return false;
        }
        if !self.sched_quiet {
            if self.sim.sched_can_progress(&self.sched) {
                return false;
            }
            self.sched_quiet = true;
        }
        true
    }

    /// Accounts the frozen-state metric samples for the quiet span
    /// `[idle_from, up_to)` — the batched analogue of the sequential
    /// fast-forward's `sample_n` bulk accounting.
    fn catch_up_samples(&mut self, up_to: u64, banks_buf: &mut Vec<usize>) {
        if self.idle_from >= up_to {
            // Consecutive dense cycles — the common case — have an
            // empty quiet span; skip the divisions.
            return;
        }
        let samples = up_to.div_ceil(METRIC_SAMPLE_INTERVAL)
            - self.idle_from.div_ceil(METRIC_SAMPLE_INTERVAL);
        if samples > 0 {
            let busy_slices = self.sim.slices.iter().filter(|s| !s.is_idle()).count();
            let busy_channels = self.sim.dram.busy_channels();
            self.sim.dram.busy_banks_per_busy_channel_into(banks_buf);
            self.parallelism
                .sample_n(busy_slices, busy_channels, banks_buf, samples);
        }
        self.idle_from = up_to;
    }

    /// Executes one core cycle of this lane — the sequential engine's
    /// evented cycle body verbatim, over the shared clock windows
    /// (`nt` NoC ticks from `noc_cycle`, `dt` DRAM ticks from
    /// `dram_cycle`). Returns `true` when the lane's workload finished
    /// and drained this cycle.
    fn run_cycle(
        &mut self,
        cycle: u64,
        noc_cycle: u64,
        nt: u64,
        dram_cycle: u64,
        dt: u64,
        scratch: &mut Scratch,
    ) -> bool {
        let sim = &mut self.sim;
        let noc_end = noc_cycle + nt;
        let dram_end = dram_cycle + dt;
        let mut sm_activity = false;

        // ---- NoC clock domain ----
        for nc in noc_cycle..noc_end {
            scratch.deliveries.clear();
            sim.req_net.tick_evented(nc, &mut scratch.deliveries);
            for d in &scratch.deliveries {
                sim.slices[d.dst].deliver(d.payload);
                self.slices_next.wake_now();
            }
            scratch.deliveries.clear();
            sim.reply_net.tick_evented(nc, &mut scratch.deliveries);
            for d in &scratch.deliveries {
                sim.sms[d.dst].on_reply(d.payload, &sim.txns, cycle);
                sm_activity = true;
                self.sms_next.wake_now();
            }
        }

        // ---- DRAM clock domain ----
        for dc in dram_cycle..dram_end {
            scratch.completions.clear();
            sim.dram.tick_evented(dc, &mut scratch.completions);
            for c in &scratch.completions {
                let t = sim.txns.get(c.id);
                if !t.is_store {
                    let slice = t.slice as usize;
                    sim.slices[slice].on_dram_completion(
                        c.id,
                        cycle,
                        &mut sim.txns,
                        &sim.mapper,
                        &mut scratch.replies,
                    );
                    self.slices_next.wake_now();
                }
            }
        }

        // ---- LLC slices ----
        if cycle >= self.slices_next.get() {
            let mut next = u64::MAX;
            for s in &mut sim.slices {
                s.tick_evented(
                    cycle,
                    dram_end,
                    &sim.cfg,
                    &mut sim.dram,
                    &mut sim.txns,
                    &sim.mapper,
                    &mut scratch.replies,
                );
                next = next.min(s.cached_next_event());
            }
            self.slices_next.rebuild(next);
        }
        for txn in scratch.replies.drain(..) {
            let t = sim.txns.get(txn);
            sim.reply_net.inject(Packet {
                payload: txn,
                src: t.slice as usize,
                dst: t.sm as usize,
                flits: valley_noc::DATA_FLITS,
                injected_at: noc_end,
            });
        }

        // ---- SMs ----
        {
            let map = sim.map.as_ref();
            let llc_slices = sim.cfg.llc_slices;
            let slicer = move |addr: PhysAddr| GpuSim::slice_of(map, llc_slices, addr);
            if cycle >= self.sms_next.get() {
                let mut next = u64::MAX;
                for sm in &mut sim.sms {
                    sm_activity |= sm.tick_evented(
                        cycle,
                        &sim.cfg,
                        &sim.mapper,
                        &mut sim.txns,
                        &slicer,
                        &mut scratch.outbound,
                    );
                    next = next.min(sm.cached_next_event());
                }
                self.sms_next.rebuild(next);
            }
        }
        for o in scratch.outbound.drain(..) {
            let t = sim.txns.get(o.txn);
            sim.req_net.inject(Packet {
                payload: o.txn,
                src: t.sm as usize,
                dst: t.slice as usize,
                flits: o.flits,
                injected_at: noc_end,
            });
        }

        // ---- TB scheduler ----
        if sm_activity || self.sched.kernel.is_none() {
            sim.schedule_tbs(&mut self.sched, cycle);
            self.sched_quiet = false;
            self.sms_next.wake_now();
        }

        // ---- Metrics ----
        if cycle.is_multiple_of(METRIC_SAMPLE_INTERVAL) {
            let busy_slices = sim.slices.iter().filter(|s| !s.is_idle()).count();
            let busy_channels = sim.dram.busy_channels();
            sim.dram
                .busy_banks_per_busy_channel_into(&mut scratch.banks_buf);
            self.parallelism
                .sample(busy_slices, busy_channels, &scratch.banks_buf);
        }

        self.idle_from = cycle + 1;
        self.sched.finished() && sim.is_drained()
    }

    /// Settles deferred counters and builds the lane's report, exactly
    /// as the sequential engine does after its run loop.
    fn finish(
        &mut self,
        end_cycle: u64,
        noc_end: u64,
        dram_end: u64,
        truncated: bool,
    ) -> SimReport {
        let sim = &mut self.sim;
        sim.req_net.flush_deferred(noc_end);
        sim.reply_net.flush_deferred(noc_end);
        sim.dram.flush_deferred(dram_end);
        for sm in &mut sim.sms {
            sm.flush_idle(end_cycle);
        }
        for s in &mut sim.slices {
            s.flush_stall(end_cycle);
        }
        sim.report(
            end_cycle,
            dram_end,
            truncated,
            &self.parallelism,
            &self.sched,
        )
    }
}

/// Core cycles per lockstep epoch: within an epoch each lane advances
/// alone on a local clock cursor, so a dense lane's working set stays
/// cache-hot for this many cycles at a stretch. Any value yields
/// bit-identical results (lanes share nothing mutable and the clock
/// trajectory is a pure function of the cycle index); the size only
/// trades locality against how promptly an all-quiet batch reaches the
/// shared fast-forward.
const EPOCH_CYCLES: u64 = 32768;

/// The lockstep driver — see the module docs for the discipline.
fn run_lockstep(sims: Vec<GpuSim>) -> Vec<SimReport> {
    let n = sims.len();
    let cfg = Arc::clone(&sims[0].cfg);
    let noc_per_core = cfg.noc_per_core();
    let dram_per_core = cfg.dram_per_core();
    let max_cycles = cfg.max_cycles;

    let mut lanes: Vec<Lane> = sims
        .into_iter()
        .map(|sim| {
            let mut lane = Lane {
                sched: TbScheduler::new(sim.workload.num_kernels()),
                sim,
                parallelism: ParallelismIntegrator::new(),
                sms_next: WakeGate::new(),
                slices_next: WakeGate::new(),
                sched_quiet: false,
                idle_from: 0,
                ev_noc: 0,
                ev_dram: 0,
                ev_core: 0,
            };
            lane.refresh_events();
            lane
        })
        .collect();

    let num_channels = lanes[0].sim.dram.num_channels();
    let mut scratch = Scratch {
        deliveries: Vec::with_capacity(64),
        completions: Vec::with_capacity(64),
        replies: Vec::new(),
        outbound: Vec::new(),
        banks_buf: Vec::with_capacity(num_channels),
    };

    let mut reports: Vec<Option<SimReport>> = (0..n).map(|_| None).collect();
    // Active lane indices in lane order: finished lanes drop out, the
    // rest keep their relative order (the walk order never affects
    // results — lanes share nothing mutable — only cache locality).
    let mut active: Vec<usize> = (0..n).collect();

    // Shared clock state, replaying exactly the dense loop's arithmetic.
    let mut cycle: u64 = 0;
    let mut noc_acc = 0.0f64;
    let mut dram_acc = 0.0f64;
    let mut noc_cycle: u64 = 0;
    let mut dram_cycle: u64 = 0;

    'outer: while !active.is_empty() {
        crate::alloc_audit::note_cycle(cycle);
        // ---- Shared fast-forward ----
        // The scheduler verdicts are evaluated first (and cached — a
        // lane untouched since the evaluation cannot change its
        // verdict); the clock horizons are the minima over the active
        // lanes, so a skipped cycle is provably quiet for *every* lane.
        let mut all_sched_quiet = true;
        let mut noc_next = u64::MAX;
        let mut dram_next = u64::MAX;
        let mut core_next = u64::MAX;
        for &i in &active {
            let lane = &mut lanes[i];
            if !lane.sched_quiet {
                if lane.sim.sched_can_progress(&lane.sched) {
                    all_sched_quiet = false;
                    break;
                }
                lane.sched_quiet = true;
            }
            noc_next = noc_next.min(lane.ev_noc);
            dram_next = dram_next.min(lane.ev_dram);
            core_next = core_next.min(lane.ev_core);
        }
        if all_sched_quiet {
            loop {
                if core_next <= cycle {
                    break;
                }
                let (na, nt) = domain_ticks(noc_acc, noc_per_core);
                if noc_cycle + nt > noc_next {
                    break;
                }
                let (da, dt) = domain_ticks(dram_acc, dram_per_core);
                if dram_cycle + dt > dram_next {
                    break;
                }
                noc_acc = na;
                noc_cycle += nt;
                dram_acc = da;
                dram_cycle += dt;
                cycle += 1;
                if cycle >= max_cycles {
                    break 'outer;
                }
            }
        }

        // ---- One lockstep epoch ----
        // Lanes are mutually independent and the clock trajectory is a
        // pure function of the cycle index (skipped and dense cycles
        // advance the accumulators identically), so lockstep does not
        // require per-cycle interleaving: each lane advances the whole
        // epoch on its own local clock cursor — replaying bit-exactly
        // the arithmetic the shared commit below performs — before the
        // next lane starts. That keeps a dense lane's working set hot
        // for `EPOCH_CYCLES` at a stretch instead of evicting it every
        // cycle, which is where naive cycle-interleaved batching loses
        // to sequential runs.
        let epoch_end = (cycle + EPOCH_CYCLES).min(max_cycles);
        let (mut e_nacc, mut e_ncyc) = (noc_acc, noc_cycle);
        let (mut e_dacc, mut e_dcyc) = (dram_acc, dram_cycle);
        for _ in cycle..epoch_end {
            let (na, nt) = domain_ticks(e_nacc, noc_per_core);
            e_nacc = na;
            e_ncyc += nt;
            let (da, dt) = domain_ticks(e_dacc, dram_per_core);
            e_dacc = da;
            e_dcyc += dt;
        }
        active.retain(|&i| {
            let lane = &mut lanes[i];
            // Whole-epoch quiet in O(1): the per-cycle quiet predicate
            // is monotone in the clock windows, so holding at the
            // epoch's end horizons covers every cycle in it, and a
            // quiet lane's verdict and horizons cannot change.
            if !lane.sched_quiet && !lane.sim.sched_can_progress(&lane.sched) {
                lane.sched_quiet = true;
            }
            if lane.sched_quiet
                && e_ncyc <= lane.ev_noc
                && e_dcyc <= lane.ev_dram
                && lane.ev_core >= epoch_end
            {
                return true;
            }
            // Per-cycle walk with a local clock cursor — the lane's own
            // solo dense/skip loop clamped to this epoch.
            let (mut c, mut nacc, mut ncyc) = (cycle, noc_acc, noc_cycle);
            let (mut dacc, mut dcyc) = (dram_acc, dram_cycle);
            while c < epoch_end {
                let (na, nt) = domain_ticks(nacc, noc_per_core);
                let (da, dt) = domain_ticks(dacc, dram_per_core);
                if !lane.is_quiet(c, ncyc, nt, dcyc, dt) {
                    lane.catch_up_samples(c, &mut scratch.banks_buf);
                    let finished = lane.run_cycle(c, ncyc, nt, dcyc, dt, &mut scratch);
                    if finished {
                        // The local clocks at this instant equal the
                        // lane's solo-run clocks at its termination
                        // (same arithmetic, same executed-cycle set).
                        reports[i] = Some(lane.finish(c + 1, ncyc + nt, dcyc + dt, false));
                        return false;
                    }
                    lane.refresh_events();
                }
                nacc = na;
                ncyc += nt;
                dacc = da;
                dcyc += dt;
                c += 1;
            }
            true
        });
        noc_acc = e_nacc;
        noc_cycle = e_ncyc;
        dram_acc = e_dacc;
        dram_cycle = e_dcyc;
        cycle = epoch_end;
        if cycle >= max_cycles {
            break;
        }
    }

    crate::alloc_audit::window_close();
    // Cycle safety limit: every still-active lane truncates with the
    // identical clock state its solo run would have truncated with.
    for &i in &active {
        let lane = &mut lanes[i];
        lane.catch_up_samples(cycle, &mut scratch.banks_buf);
        reports[i] = Some(lane.finish(cycle, noc_cycle, dram_cycle, true));
    }

    reports
        .into_iter()
        .map(|r| r.expect("every lane reported"))
        .collect()
}
