//! The batched many-sim engine: N independent simulations ("lanes")
//! advanced through the sequential evented tick discipline in lockstep.
//!
//! # Why batch
//!
//! A sweep grid's dominant axis is seeds × benchmarks over *identical*
//! machine configurations: every job replays the same control flow over
//! different data. Run one job at a time and each pays the full
//! instruction-stream, branch-history and config-cache-line cost from
//! cold. [`BatchSim`] amortizes those: all lanes share one
//! [`GpuConfig`](crate::GpuConfig) allocation and one address map (see
//! [`GpuSim::with_shared`]), and the driver walks the *same* engine code
//! across the lanes cycle by cycle, so the hot loop's code and the
//! shared immutable state stay resident while only the per-lane state
//! differs — the CPU analogue of dispatch-wide data parallelism.
//!
//! # SoA hot state
//!
//! The per-lane mutable scalars the driver touches every cycle — the
//! cached event horizons, the wake gates, the cached scheduler verdict,
//! the lazy-sample watermark and the six parallelism-integrator
//! accumulators — live in [`HotSoa`]: one contiguous cross-lane array
//! per counter, indexed `[counter][lane]`. The shared fast-forward scan
//! walks a handful of dense stripes instead of chasing N scattered lane
//! structs, and a [`LaneView`] borrows a lane's stripe (plus its
//! simulator) for the duration of a cycle body. The integrator is only
//! materialized from its stripe at report time
//! ([`ParallelismIntegrator::from_parts`]).
//!
//! # Lockstep discipline
//!
//! All lanes agree on the three clock ratios and the cycle safety limit
//! (enforced by [`BatchSim::new`]), so one shared set of clock
//! accumulators — replaying exactly the dense loop's arithmetic — serves
//! every lane. The driver alternates two phases:
//!
//! * **Shared fast-forward** — when *every* active lane is provably
//!   quiet (its wake gates, NoC/DRAM next-event caches and TB scheduler
//!   all agree nothing can happen), the clocks skip to the earliest
//!   event over all lanes, exactly like the sequential engine's
//!   `fast_forward` with the minima taken across lanes.
//! * **Lockstep epochs** — when some lane has work, the batch advances
//!   one fixed-size epoch of core cycles. The coordinator pre-computes
//!   the epoch's domain-tick schedule once into a shared **tick tape**
//!   (one byte per core cycle: the NoC and DRAM tick counts, each 0 or
//!   1 under the evented clock envelope), so lanes replay the clock
//!   trajectory with two integer adds per cycle instead of re-running
//!   the floating-point accumulator arithmetic per lane. Lanes are
//!   mutually independent and the trajectory is a pure function of the
//!   cycle index, so within the epoch each lane runs *alone* on a local
//!   clock cursor: its own dense/skip loop, checking its quiet
//!   conditions (the same four the sequential fast-forward uses: NoC
//!   window, DRAM window, core-domain [`WakeGate`]s, scheduler verdict)
//!   and jumping quiet spans straight to the earliest horizon via the
//!   tape's prefix sums. This keeps a dense lane's working set
//!   cache-hot for a whole epoch instead of evicting it every cycle. A
//!   lane that is provably quiet for the entire epoch is skipped in
//!   O(1) — the quiet predicate is monotone in the clock windows, so
//!   holding at the epoch-end horizons covers every cycle in it. Frozen
//!   metric samples of quiet spans are accounted lazily on wake, with
//!   the same `sample_n` bulk arithmetic the sequential engine uses.
//! * **Early exit** — a lane whose workload completes builds its
//!   [`SimReport`] immediately (with the clock values at that instant,
//!   which equal its solo run's) and drops out of the active set;
//!   remaining lanes keep ticking.
//!
//! # Batch × threads composition
//!
//! With `VALLEY_SIM_THREADS > 1` ([`Parallelism::Shards`]) the lanes are
//! partitioned into that many contiguous **lane groups**, each with its
//! own SoA block and scratch, and the groups execute every lockstep
//! epoch concurrently on worker threads behind the same spin-then-park
//! epoch barrier the phase-parallel shard engine uses (`par::Ctrl`,
//! generic over the published plan). Groups share nothing mutable — the
//! coordinator alone advances the shared clocks and writes the tick
//! tape between barriers — so the thread count, like the batch width,
//! is pure scheduling: `valley sweep --batch N --sim-threads M` runs
//! one coherent engine and `M` trades wall time, never results. A batch
//! that falls back to per-lane sequential runs (single lane, or a clock
//! envelope outside the evented discipline) still honors the threads
//! knob lane by lane through [`GpuSim::run_with`].
//!
//! A lane executes a cycle body if and only if its solo sequential run
//! would have executed that cycle densely — the quiet predicate is the
//! sequential fast-forward's skip predicate evaluated per lane — so
//! every lane's state trajectory, and therefore its report, is
//! **bit-identical** to [`GpuSim::run`] on the sequential evented
//! engine (pinned by `tests/event_driven_equivalence.rs` and the
//! randomized battery in `crates/sim/tests/batch_equivalence.rs`, both
//! of which sweep the batch-width × group-count grid). Batch width is
//! pure scheduling: it trades wall time, never results, which is why
//! the harness keeps it out of job keys.

use crate::gpu::{domain_ticks, GpuSim, Parallelism, TbScheduler, METRIC_SAMPLE_INTERVAL};
use crate::metrics::{ParallelismIntegrator, SimReport};
use crate::par::{split_ranges, Ctrl};
use crate::sm::SmOutbound;
use crate::wake::WakeGate;
use std::sync::{Arc, Mutex, RwLock};
use valley_core::PhysAddr;
use valley_noc::Packet;

/// Batch-width knob for the harness's sweep executor (see
/// [`BatchSim`]): how many same-config jobs to drive through one
/// lockstep batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Batching(pub usize);

impl Batching {
    /// Reads `VALLEY_SIM_BATCH`: unset, empty, `0` or `1` mean no
    /// batching (width 1); `n > 1` means lockstep batches of up to `n`
    /// lanes.
    ///
    /// # Panics
    ///
    /// Panics on a value that is not a non-negative integer, so a typo'd
    /// environment cannot silently fall back to unbatched runs.
    pub fn from_env() -> Self {
        match std::env::var("VALLEY_SIM_BATCH") {
            Err(_) => Batching(1),
            Ok(s) if s.is_empty() => Batching(1),
            Ok(s) => {
                let n: usize = s
                    .parse()
                    .unwrap_or_else(|_| panic!("VALLEY_SIM_BATCH={s} is not an integer"));
                Batching(n.max(1))
            }
        }
    }

    /// The batch width this knob requests (1 = unbatched).
    pub fn width(self) -> usize {
        self.0.max(1)
    }
}

/// N simulations advanced in lockstep — see the module docs.
///
/// Lanes may differ in mapper, seed and workload; they must agree on
/// the clock ratios and cycle limit (the shared clock state). Build the
/// lanes with [`GpuSim::with_shared`] so the config and address map are
/// genuinely shared allocations.
///
/// ```no_run
/// use valley_sim::BatchSim;
/// # fn sims() -> Vec<valley_sim::GpuSim> { unimplemented!() }
/// let reports = BatchSim::new(sims()).run();
/// ```
pub struct BatchSim {
    sims: Vec<GpuSim>,
}

impl BatchSim {
    /// Wraps `sims` as the lanes of one lockstep batch.
    ///
    /// # Panics
    ///
    /// Panics if `sims` is empty or the lanes disagree on a clock or on
    /// `max_cycles` (the shared lockstep state).
    pub fn new(sims: Vec<GpuSim>) -> Self {
        assert!(!sims.is_empty(), "a batch needs at least one lane");
        let first = Arc::clone(&sims[0].cfg);
        for s in &sims[1..] {
            assert!(
                s.cfg.core_clock_ghz == first.core_clock_ghz
                    && s.cfg.noc_clock_ghz == first.noc_clock_ghz
                    && s.cfg.dram.clock_ghz == first.dram.clock_ghz
                    && s.cfg.max_cycles == first.max_cycles,
                "batch lanes must agree on clocks and the cycle limit"
            );
        }
        BatchSim { sims }
    }

    /// Number of lanes.
    pub fn width(&self) -> usize {
        self.sims.len()
    }

    /// Runs every lane to completion and returns the per-lane reports in
    /// lane order — each bit-identical to what that lane's
    /// [`GpuSim::run`] would have produced on the sequential evented
    /// engine.
    ///
    /// Honors `VALLEY_SIM_THREADS` (see [`Parallelism::from_env`]): with
    /// `n > 1` the lane groups execute each lockstep epoch concurrently,
    /// with results bit-identical for every thread count.
    pub fn run(self) -> Vec<SimReport> {
        self.run_with(Parallelism::from_env())
    }

    /// [`BatchSim::run`] with an explicit [`Parallelism`] knob: the
    /// lanes are partitioned into `par.shards()` groups (clamped to the
    /// lane count) that tick concurrently between epoch barriers.
    pub fn run_with(self, par: Parallelism) -> Vec<SimReport> {
        let cfg = Arc::clone(&self.sims[0].cfg);
        // One lane has nothing to amortize; a clock envelope outside the
        // evented discipline (a domain faster than the core clock) is
        // handled by the sequential engine's own dense fallback. Either
        // way the lanes run one at a time — and still honor the threads
        // knob individually, since `GpuSim::run_with` composes with the
        // phase-parallel shard engine on its own.
        if self.sims.len() == 1 || cfg.noc_per_core() > 1.0 || cfg.dram_per_core() > 1.0 {
            return self.sims.into_iter().map(|s| s.run_with(par)).collect();
        }
        let groups = par.shards();
        let threads = std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1)
            .min(groups);
        run_lockstep(self.sims, groups, threads)
    }

    /// Runs the lockstep engine with explicit group and worker-thread
    /// counts. Primarily for the equivalence batteries, which pin the
    /// width × groups grid and the threaded transport independently of
    /// the machine's core count and the environment knobs.
    #[doc(hidden)]
    pub fn run_grouped(self, groups: usize, threads: usize) -> Vec<SimReport> {
        let cfg = Arc::clone(&self.sims[0].cfg);
        if self.sims.len() == 1 || cfg.noc_per_core() > 1.0 || cfg.dram_per_core() > 1.0 {
            return self
                .sims
                .into_iter()
                .map(|s| s.run_with(Parallelism::Off))
                .collect();
        }
        run_lockstep(self.sims, groups, threads)
    }
}

/// Reusable hot-loop buffers, one set per lane group (each use fully
/// drains or clears them, so nothing leaks across lanes).
struct Scratch {
    deliveries: Vec<valley_noc::Delivery>,
    completions: Vec<valley_dram::DramCompletion>,
    replies: Vec<u64>,
    outbound: Vec<SmOutbound>,
    banks_buf: Vec<usize>,
}

/// The cross-lane structure-of-arrays block: every per-lane mutable
/// scalar the lockstep driver touches on the per-cycle paths, laid out
/// as one contiguous array per counter (`[counter][lane]`). The shared
/// fast-forward scan reads the `ev_*` stripes sequentially; a cycle
/// body mutates only its own lane's elements through a [`LaneView`].
/// All arrays are fixed-size boxed slices allocated up front, so the
/// steady-state epochs never grow them (see the alloc-audit battery).
struct HotSoa {
    /// Cached earliest NoC-domain event per lane (both nets), valid
    /// while the lane is untouched — quiet cycles mutate nothing, so
    /// the cached value stays *identical* to a fresh read; this is pure
    /// driver economics, not an approximation. Refreshed after every
    /// cycle body.
    ev_noc: Box<[u64]>,
    /// Cached earliest DRAM-domain event per lane.
    ev_dram: Box<[u64]>,
    /// Cached earliest core-domain event per lane (min over its gates).
    ev_core: Box<[u64]>,
    /// Per-lane SM wake gate (the sequential engine's `sms_next`).
    sms_next: Box<[WakeGate]>,
    /// Per-lane LLC-slice wake gate (the sequential `slices_next`).
    slices_next: Box<[WakeGate]>,
    /// Cached negative `can_progress` verdict per lane (see the
    /// sequential engine's `sched_quiet`): exact until the lane body
    /// runs the TB scheduler again, because quiet cycles touch no lane
    /// state.
    sched_quiet: Box<[bool]>,
    /// First cycle whose metric sample is not yet accounted: every
    /// cycle in `[idle_from, now)` was lane-quiet, so all elapsed
    /// sampling points see the identical frozen state and are accounted
    /// in bulk when the lane next wakes (or terminates).
    idle_from: Box<[u64]>,
    /// The six [`ParallelismIntegrator`] accumulators, striped per lane
    /// and reassembled only at report time.
    llc_busy_sum: Box<[u64]>,
    llc_samples: Box<[u64]>,
    chan_busy_sum: Box<[u64]>,
    chan_samples: Box<[u64]>,
    bank_busy_sum: Box<[u64]>,
    bank_samples: Box<[u64]>,
}

impl HotSoa {
    fn new(n: usize) -> Self {
        HotSoa {
            ev_noc: vec![0; n].into_boxed_slice(),
            ev_dram: vec![0; n].into_boxed_slice(),
            ev_core: vec![0; n].into_boxed_slice(),
            sms_next: vec![WakeGate::new(); n].into_boxed_slice(),
            slices_next: vec![WakeGate::new(); n].into_boxed_slice(),
            sched_quiet: vec![false; n].into_boxed_slice(),
            idle_from: vec![0; n].into_boxed_slice(),
            llc_busy_sum: vec![0; n].into_boxed_slice(),
            llc_samples: vec![0; n].into_boxed_slice(),
            chan_busy_sum: vec![0; n].into_boxed_slice(),
            chan_samples: vec![0; n].into_boxed_slice(),
            bank_busy_sum: vec![0; n].into_boxed_slice(),
            bank_samples: vec![0; n].into_boxed_slice(),
        }
    }

    /// [`ParallelismIntegrator::sample`] against lane `l`'s stripe —
    /// the identical guard structure and arithmetic, so the reassembled
    /// integrator is bit-identical to the sequential engine's.
    fn sample(&mut self, l: usize, busy_slices: usize, busy_channels: usize, banks: &[usize]) {
        if busy_slices > 0 {
            self.llc_busy_sum[l] += busy_slices as u64;
            self.llc_samples[l] += 1;
        }
        if busy_channels > 0 {
            self.chan_busy_sum[l] += busy_channels as u64;
            self.chan_samples[l] += 1;
        }
        for &b in banks {
            self.bank_busy_sum[l] += b as u64;
            self.bank_samples[l] += 1;
        }
    }

    /// [`ParallelismIntegrator::sample_n`] against lane `l`'s stripe.
    fn sample_n(
        &mut self,
        l: usize,
        busy_slices: usize,
        busy_channels: usize,
        banks: &[usize],
        n: u64,
    ) {
        if n == 0 {
            return;
        }
        if busy_slices > 0 {
            self.llc_busy_sum[l] += busy_slices as u64 * n;
            self.llc_samples[l] += n;
        }
        if busy_channels > 0 {
            self.chan_busy_sum[l] += busy_channels as u64 * n;
            self.chan_samples[l] += n;
        }
        for &b in banks {
            self.bank_busy_sum[l] += b as u64 * n;
            self.bank_samples[l] += n;
        }
    }

    /// Materializes lane `l`'s integrator from its stripe.
    fn integrator(&self, l: usize) -> ParallelismIntegrator {
        ParallelismIntegrator::from_parts(
            self.llc_busy_sum[l],
            self.llc_samples[l],
            self.chan_busy_sum[l],
            self.chan_samples[l],
            self.bank_busy_sum[l],
            self.bank_samples[l],
        )
    }
}

/// One lane's cold state: the full simulator plus its TB scheduler.
/// Everything the per-cycle paths touch besides these lives in the
/// group's [`HotSoa`] stripes.
struct LaneCore {
    sim: GpuSim,
    sched: TbScheduler,
}

/// A lane's working handle: its simulator and scheduler plus a borrow
/// of the group's SoA block, indexed at the lane's stripe. Method
/// bodies are the sequential engine's cycle body verbatim, with the
/// per-run locals replaced by stripe elements.
struct LaneView<'a> {
    sim: &'a mut GpuSim,
    sched: &'a mut TbScheduler,
    soa: &'a mut HotSoa,
    l: usize,
}

impl LaneView<'_> {
    /// Recomputes the lane's cached event horizons from its live state.
    fn refresh_events(&mut self) {
        let l = self.l;
        self.soa.ev_noc[l] = self
            .sim
            .req_net
            .cached_next_event()
            .min(self.sim.reply_net.cached_next_event());
        self.soa.ev_dram[l] = self.sim.dram.cached_next_event();
        self.soa.ev_core[l] = self.soa.sms_next[l]
            .get()
            .min(self.soa.slices_next[l].get());
    }

    /// The sequential fast-forward's skip predicate, evaluated for this
    /// lane at the shared cycle: `true` iff executing the cycle body
    /// would provably do nothing. Caches a negative scheduler verdict
    /// exactly like the sequential engine (only after every clock
    /// condition passed, mirroring its early-return order).
    fn is_quiet(&mut self, cycle: u64, noc_cycle: u64, nt: u64, dram_cycle: u64, dt: u64) -> bool {
        let l = self.l;
        if noc_cycle + nt > self.soa.ev_noc[l] {
            return false;
        }
        if dram_cycle + dt > self.soa.ev_dram[l] {
            return false;
        }
        if self.soa.ev_core[l] <= cycle {
            return false;
        }
        if !self.soa.sched_quiet[l] {
            if self.sim.sched_can_progress(self.sched) {
                return false;
            }
            self.soa.sched_quiet[l] = true;
        }
        true
    }

    /// Accounts the frozen-state metric samples for the quiet span
    /// `[idle_from, up_to)` — the batched analogue of the sequential
    /// fast-forward's `sample_n` bulk accounting.
    fn catch_up_samples(&mut self, up_to: u64, banks_buf: &mut Vec<usize>) {
        let l = self.l;
        if self.soa.idle_from[l] >= up_to {
            // Consecutive dense cycles — the common case — have an
            // empty quiet span; skip the divisions.
            return;
        }
        let samples = up_to.div_ceil(METRIC_SAMPLE_INTERVAL)
            - self.soa.idle_from[l].div_ceil(METRIC_SAMPLE_INTERVAL);
        if samples > 0 {
            let busy_slices = self.sim.slices.iter().filter(|s| !s.is_idle()).count();
            let busy_channels = self.sim.dram.busy_channels();
            self.sim.dram.busy_banks_per_busy_channel_into(banks_buf);
            self.soa
                .sample_n(l, busy_slices, busy_channels, banks_buf, samples);
        }
        self.soa.idle_from[l] = up_to;
    }

    /// Executes one core cycle of this lane — the sequential engine's
    /// evented cycle body verbatim, over the shared clock windows
    /// (`nt` NoC ticks from `noc_cycle`, `dt` DRAM ticks from
    /// `dram_cycle`). Returns `true` when the lane's workload finished
    /// and drained this cycle.
    fn run_cycle(
        &mut self,
        cycle: u64,
        noc_cycle: u64,
        nt: u64,
        dram_cycle: u64,
        dt: u64,
        scratch: &mut Scratch,
    ) -> bool {
        let l = self.l;
        let sim = &mut *self.sim;
        let soa = &mut *self.soa;
        let noc_end = noc_cycle + nt;
        let dram_end = dram_cycle + dt;
        let mut sm_activity = false;

        // ---- NoC clock domain ----
        for nc in noc_cycle..noc_end {
            scratch.deliveries.clear();
            sim.req_net.tick_evented(nc, &mut scratch.deliveries);
            for d in &scratch.deliveries {
                sim.slices[d.dst].deliver(d.payload);
                soa.slices_next[l].wake_now();
            }
            scratch.deliveries.clear();
            sim.reply_net.tick_evented(nc, &mut scratch.deliveries);
            for d in &scratch.deliveries {
                sim.sms[d.dst].on_reply(d.payload, &sim.txns, cycle);
                sm_activity = true;
                soa.sms_next[l].wake_now();
            }
        }

        // ---- DRAM clock domain ----
        for dc in dram_cycle..dram_end {
            scratch.completions.clear();
            sim.dram.tick_evented(dc, &mut scratch.completions);
            for c in &scratch.completions {
                let t = sim.txns.get(c.id);
                if !t.is_store {
                    let slice = t.slice as usize;
                    sim.slices[slice].on_dram_completion(
                        c.id,
                        cycle,
                        &mut sim.txns,
                        &sim.mapper,
                        &mut scratch.replies,
                    );
                    soa.slices_next[l].wake_now();
                }
            }
        }

        // ---- LLC slices ----
        if cycle >= soa.slices_next[l].get() {
            let mut next = u64::MAX;
            for s in &mut sim.slices {
                s.tick_evented(
                    cycle,
                    dram_end,
                    &sim.cfg,
                    &mut sim.dram,
                    &mut sim.txns,
                    &sim.mapper,
                    &mut scratch.replies,
                );
                next = next.min(s.cached_next_event());
            }
            soa.slices_next[l].rebuild(next);
        }
        for txn in scratch.replies.drain(..) {
            let t = sim.txns.get(txn);
            sim.reply_net.inject(Packet {
                payload: txn,
                src: t.slice as usize,
                dst: t.sm as usize,
                flits: valley_noc::DATA_FLITS,
                injected_at: noc_end,
            });
        }

        // ---- SMs ----
        {
            let map = sim.map.as_ref();
            let llc_slices = sim.cfg.llc_slices;
            let slicer = move |addr: PhysAddr| GpuSim::slice_of(map, llc_slices, addr);
            if cycle >= soa.sms_next[l].get() {
                let mut next = u64::MAX;
                for sm in &mut sim.sms {
                    sm_activity |= sm.tick_evented(
                        cycle,
                        &sim.cfg,
                        &sim.mapper,
                        &mut sim.txns,
                        &slicer,
                        &mut scratch.outbound,
                    );
                    next = next.min(sm.cached_next_event());
                }
                soa.sms_next[l].rebuild(next);
            }
        }
        for o in scratch.outbound.drain(..) {
            let t = sim.txns.get(o.txn);
            sim.req_net.inject(Packet {
                payload: o.txn,
                src: t.sm as usize,
                dst: t.slice as usize,
                flits: o.flits,
                injected_at: noc_end,
            });
        }

        // ---- TB scheduler ----
        if sm_activity || self.sched.kernel.is_none() {
            sim.schedule_tbs(&mut *self.sched, cycle);
            soa.sched_quiet[l] = false;
            soa.sms_next[l].wake_now();
        }

        // ---- Metrics ----
        if cycle.is_multiple_of(METRIC_SAMPLE_INTERVAL) {
            let busy_slices = sim.slices.iter().filter(|s| !s.is_idle()).count();
            let busy_channels = sim.dram.busy_channels();
            sim.dram
                .busy_banks_per_busy_channel_into(&mut scratch.banks_buf);
            soa.sample(l, busy_slices, busy_channels, &scratch.banks_buf);
        }

        soa.idle_from[l] = cycle + 1;
        self.sched.finished() && sim.is_drained()
    }

    /// Settles deferred counters and builds the lane's report, exactly
    /// as the sequential engine does after its run loop.
    fn finish(
        &mut self,
        end_cycle: u64,
        noc_end: u64,
        dram_end: u64,
        truncated: bool,
    ) -> SimReport {
        let sim = &mut *self.sim;
        sim.req_net.flush_deferred(noc_end);
        sim.reply_net.flush_deferred(noc_end);
        sim.dram.flush_deferred(dram_end);
        for sm in &mut sim.sms {
            sm.flush_idle(end_cycle);
        }
        for s in &mut sim.slices {
            s.flush_stall(end_cycle);
        }
        let parallelism = self.soa.integrator(self.l);
        sim.report(end_cycle, dram_end, truncated, &parallelism, &*self.sched)
    }
}

/// The per-epoch plan the coordinator publishes to the lane groups:
/// the epoch's core-cycle window, the domain clocks at its start and
/// the domain clocks at its end (for the O(1) whole-epoch quiet
/// check). The per-cycle tick schedule travels separately in the
/// shared tick tape.
#[derive(Clone, Copy, Default)]
struct BatchPlan {
    cycle: u64,
    epoch_end: u64,
    noc_cycle: u64,
    dram_cycle: u64,
    e_ncyc: u64,
    e_dcyc: u64,
}

/// The epoch's pre-computed domain-tick schedule. `bytes[i]` packs the
/// NoC and DRAM tick counts for core cycle `plan.cycle + i` (bit 0 NoC,
/// bit 1 DRAM); `nsum`/`dsum` are the running totals over `bytes[0..k]`
/// (`len + 1` entries, `nsum[0] == 0`), so a lane can jump its local
/// clock cursor to any offset — and binary-search the offset where a
/// domain clock reaches an event horizon — in O(log n) instead of
/// replaying the quiet cycles one by one. All three vectors only
/// shrink-and-refill within their fixed capacity.
struct TickTape {
    bytes: Vec<u8>,
    nsum: Vec<u32>,
    dsum: Vec<u32>,
}

/// What a group's fast-forward scan reports to the coordinator.
struct ScanOut {
    all_sched_quiet: bool,
    noc_next: u64,
    dram_next: u64,
    core_next: u64,
}

/// A contiguous slice of the batch's lanes plus their shared SoA block
/// and scratch. Groups partition the lanes (`par::split_ranges`) and
/// share nothing mutable, so they may tick an epoch concurrently.
struct LaneGroup {
    /// Global index of the group's first lane (local lane `l` is global
    /// lane `base + l`).
    base: usize,
    lanes: Vec<LaneCore>,
    soa: HotSoa,
    /// Active *local* lane indices in lane order: finished lanes drop
    /// out, the rest keep their relative order (the walk order never
    /// affects results — lanes share nothing mutable — only locality).
    active: Vec<usize>,
    reports: Vec<Option<SimReport>>,
    scratch: Scratch,
}

impl LaneGroup {
    /// The shared fast-forward's per-group scan: evaluates (and caches)
    /// the scheduler verdicts in lane order, bailing at the first lane
    /// with schedulable work, and otherwise folds the group's event
    /// horizons — read off the dense `ev_*` stripes — into minima.
    fn scan(&mut self) -> ScanOut {
        let mut out = ScanOut {
            all_sched_quiet: true,
            noc_next: u64::MAX,
            dram_next: u64::MAX,
            core_next: u64::MAX,
        };
        let LaneGroup {
            lanes, soa, active, ..
        } = self;
        for &l in active.iter() {
            if !soa.sched_quiet[l] {
                let lane = &mut lanes[l];
                if lane.sim.sched_can_progress(&lane.sched) {
                    out.all_sched_quiet = false;
                    return out;
                }
                soa.sched_quiet[l] = true;
            }
            out.noc_next = out.noc_next.min(soa.ev_noc[l]);
            out.dram_next = out.dram_next.min(soa.ev_dram[l]);
            out.core_next = out.core_next.min(soa.ev_core[l]);
        }
        out
    }

    /// Advances every active lane of this group through one lockstep
    /// epoch. Lanes are mutually independent and the clock trajectory
    /// is a pure function of the cycle index (skipped and dense cycles
    /// advance the clocks identically), so each lane replays the whole
    /// epoch alone on a local clock cursor — reading the pre-computed
    /// tick tape instead of re-deriving the accumulator arithmetic —
    /// before the next lane starts. That keeps a dense lane's working
    /// set hot for `EPOCH_CYCLES` at a stretch instead of evicting it
    /// every cycle, which is where naive cycle-interleaved batching
    /// loses to sequential runs.
    fn run_epoch(&mut self, plan: &BatchPlan, tape: &TickTape) {
        debug_assert_eq!(tape.bytes.len() as u64, plan.epoch_end - plan.cycle);
        let LaneGroup {
            lanes,
            soa,
            active,
            reports,
            scratch,
            ..
        } = self;
        active.retain(|&l| {
            let lane = &mut lanes[l];
            // Whole-epoch quiet in O(1): the per-cycle quiet predicate
            // is monotone in the clock windows, so holding at the
            // epoch's end horizons covers every cycle in it, and a
            // quiet lane's verdict and horizons cannot change.
            if !soa.sched_quiet[l] && !lane.sim.sched_can_progress(&lane.sched) {
                soa.sched_quiet[l] = true;
            }
            if soa.sched_quiet[l]
                && plan.e_ncyc <= soa.ev_noc[l]
                && plan.e_dcyc <= soa.ev_dram[l]
                && soa.ev_core[l] >= plan.epoch_end
            {
                return true;
            }
            // Dense/skip walk with a local clock cursor — the lane's
            // own solo loop clamped to this epoch, with the tick counts
            // read off the tape. A quiet cycle stays quiet until one of
            // the lane's horizons is reached (the windows are monotone
            // and nothing mutates a quiet lane), so instead of walking
            // the quiet span byte by byte the cursor jumps straight to
            // the earliest horizon via the tape's prefix sums — the
            // intra-epoch analogue of the solo engine's fast-forward.
            let mut view = LaneView {
                sim: &mut lane.sim,
                sched: &mut lane.sched,
                soa: &mut *soa,
                l,
            };
            let len = tape.bytes.len();
            let mut i = 0usize;
            let (mut c, mut ncyc, mut dcyc) = (plan.cycle, plan.noc_cycle, plan.dram_cycle);
            while i < len {
                let b = tape.bytes[i];
                let nt = u64::from(b & 1);
                let dt = u64::from(b >> 1);
                if view.is_quiet(c, ncyc, nt, dcyc, dt) {
                    // First offset where a domain clock would pass its
                    // horizon: smallest k with `sum[k + 1] > horizon -
                    // epoch base` (an event fires on the cycle whose
                    // tick crosses the horizon, so quiet holds through
                    // offset k - 1). `partition_point` is over the
                    // whole monotone prefix array; quietness at `i`
                    // guarantees every bound lands at `i + 1` or later.
                    let tn = view.soa.ev_noc[l] - plan.noc_cycle;
                    let off_noc = tape.nsum.partition_point(|&s| u64::from(s) <= tn) - 1;
                    let td = view.soa.ev_dram[l] - plan.dram_cycle;
                    let off_dram = tape.dsum.partition_point(|&s| u64::from(s) <= td) - 1;
                    let off_core = (view.soa.ev_core[l] - plan.cycle).min(len as u64) as usize;
                    let next = off_core.min(off_noc).min(off_dram);
                    debug_assert!(next > i, "quiet jump must make progress");
                    i = next;
                    c = plan.cycle + i as u64;
                    ncyc = plan.noc_cycle + u64::from(tape.nsum[i]);
                    dcyc = plan.dram_cycle + u64::from(tape.dsum[i]);
                    continue;
                }
                view.catch_up_samples(c, &mut scratch.banks_buf);
                let finished = view.run_cycle(c, ncyc, nt, dcyc, dt, scratch);
                if finished {
                    // The local clocks at this instant equal the
                    // lane's solo-run clocks at its termination
                    // (same arithmetic, same executed-cycle set).
                    reports[l] = Some(view.finish(c + 1, ncyc + nt, dcyc + dt, false));
                    return false;
                }
                view.refresh_events();
                ncyc += nt;
                dcyc += dt;
                c += 1;
                i += 1;
            }
            true
        });
    }

    /// Cycle safety limit: every still-active lane truncates with the
    /// identical clock state its solo run would have truncated with.
    fn truncate(&mut self, cycle: u64, noc_cycle: u64, dram_cycle: u64) {
        let LaneGroup {
            lanes,
            soa,
            active,
            reports,
            scratch,
            ..
        } = self;
        for &l in active.iter() {
            let lane = &mut lanes[l];
            let mut view = LaneView {
                sim: &mut lane.sim,
                sched: &mut lane.sched,
                soa: &mut *soa,
                l,
            };
            view.catch_up_samples(cycle, &mut scratch.banks_buf);
            reports[l] = Some(view.finish(cycle, noc_cycle, dram_cycle, true));
        }
        active.clear();
    }
}

/// Core cycles per lockstep epoch: within an epoch each lane advances
/// alone on a local clock cursor, so a dense lane's working set stays
/// cache-hot for this many cycles at a stretch. Any value yields
/// bit-identical results (lanes share nothing mutable and the clock
/// trajectory is a pure function of the cycle index); the size only
/// trades locality against how promptly an all-quiet batch reaches the
/// shared fast-forward. Also the tick tape's capacity (one byte per
/// cycle).
const EPOCH_CYCLES: u64 = 32768;

/// The coordinator loop shared by the inline and threaded transports:
/// scans the groups, fast-forwards the shared clocks when every lane is
/// quiet, pre-computes each epoch's tick tape, and hands the epoch plan
/// to `exec` (which ticks the groups — inline, or fanned out over the
/// `Ctrl` barrier). Returns the per-lane reports in global lane order.
fn drive(
    groups: &[Mutex<LaneGroup>],
    tape: &RwLock<TickTape>,
    noc_per_core: f64,
    dram_per_core: f64,
    max_cycles: u64,
    exec: &mut dyn FnMut(&BatchPlan),
) -> Vec<SimReport> {
    let total: usize = groups
        .iter()
        .map(|g| g.lock().expect("lane group poisoned").lanes.len())
        .sum();

    // Shared clock state, replaying exactly the dense loop's arithmetic.
    let mut cycle: u64 = 0;
    let mut noc_acc = 0.0f64;
    let mut dram_acc = 0.0f64;
    let mut noc_cycle: u64 = 0;
    let mut dram_cycle: u64 = 0;

    'outer: loop {
        crate::alloc_audit::note_cycle(cycle);
        // ---- Shared fast-forward ----
        // The scheduler verdicts are evaluated first (and cached — a
        // lane untouched since the evaluation cannot change its
        // verdict); the clock horizons are the minima over the active
        // lanes of every group, so a skipped cycle is provably quiet
        // for *every* lane. Workers are parked between epochs, so the
        // group locks are uncontended here.
        let mut any_active = false;
        let mut all_sched_quiet = true;
        let mut noc_next = u64::MAX;
        let mut dram_next = u64::MAX;
        let mut core_next = u64::MAX;
        for g in groups {
            let mut g = g.lock().expect("lane group poisoned");
            if g.active.is_empty() {
                continue;
            }
            any_active = true;
            let s = g.scan();
            if !s.all_sched_quiet {
                all_sched_quiet = false;
                break;
            }
            noc_next = noc_next.min(s.noc_next);
            dram_next = dram_next.min(s.dram_next);
            core_next = core_next.min(s.core_next);
        }
        if !any_active {
            break;
        }
        if all_sched_quiet {
            loop {
                if core_next <= cycle {
                    break;
                }
                let (na, nt) = domain_ticks(noc_acc, noc_per_core);
                if noc_cycle + nt > noc_next {
                    break;
                }
                let (da, dt) = domain_ticks(dram_acc, dram_per_core);
                if dram_cycle + dt > dram_next {
                    break;
                }
                noc_acc = na;
                noc_cycle += nt;
                dram_acc = da;
                dram_cycle += dt;
                cycle += 1;
                if cycle >= max_cycles {
                    break 'outer;
                }
            }
        }

        // ---- One lockstep epoch ----
        // Pre-compute the epoch's domain-tick schedule once into the
        // shared tape (and the epoch-end clocks for the O(1) quiet
        // check), so no lane re-runs the f64 accumulator arithmetic.
        // The tape only shrinks-and-refills within its fixed capacity.
        let epoch_end = (cycle + EPOCH_CYCLES).min(max_cycles);
        let plan = {
            let mut t = tape.write().expect("tick tape poisoned");
            t.bytes.clear();
            t.nsum.clear();
            t.dsum.clear();
            t.nsum.push(0);
            t.dsum.push(0);
            let (mut e_nacc, mut e_ncyc) = (noc_acc, noc_cycle);
            let (mut e_dacc, mut e_dcyc) = (dram_acc, dram_cycle);
            for _ in cycle..epoch_end {
                let (na, nt) = domain_ticks(e_nacc, noc_per_core);
                e_nacc = na;
                e_ncyc += nt;
                let (da, dt) = domain_ticks(e_dacc, dram_per_core);
                e_dacc = da;
                e_dcyc += dt;
                // Under the evented clock envelope (domain clocks no
                // faster than the core clock) each domain ticks 0 or 1
                // times per core cycle, so a byte holds both counts.
                debug_assert!(nt <= 1 && dt <= 1);
                t.bytes.push((nt as u8) | ((dt as u8) << 1));
                t.nsum.push((e_ncyc - noc_cycle) as u32);
                t.dsum.push((e_dcyc - dram_cycle) as u32);
            }
            let plan = BatchPlan {
                cycle,
                epoch_end,
                noc_cycle,
                dram_cycle,
                e_ncyc,
                e_dcyc,
            };
            noc_acc = e_nacc;
            noc_cycle = e_ncyc;
            dram_acc = e_dacc;
            dram_cycle = e_dcyc;
            plan
        };
        exec(&plan);
        cycle = epoch_end;
        if cycle >= max_cycles {
            break;
        }
    }

    crate::alloc_audit::window_close();
    let mut out: Vec<Option<SimReport>> = (0..total).map(|_| None).collect();
    for g in groups {
        let mut g = g.lock().expect("lane group poisoned");
        g.truncate(cycle, noc_cycle, dram_cycle);
        let base = g.base;
        for (l, slot) in g.reports.iter_mut().enumerate() {
            out[base + l] = slot.take();
        }
    }
    out.into_iter()
        .map(|r| r.expect("every lane reported"))
        .collect()
}

/// The lockstep driver — see the module docs for the discipline. The
/// lanes are partitioned into `num_groups` contiguous groups (clamped
/// to the lane count) ticked by up to `threads` OS threads; both are
/// pure scheduling and never affect results.
fn run_lockstep(sims: Vec<GpuSim>, num_groups: usize, threads: usize) -> Vec<SimReport> {
    let n = sims.len();
    let cfg = Arc::clone(&sims[0].cfg);
    let noc_per_core = cfg.noc_per_core();
    let dram_per_core = cfg.dram_per_core();
    let max_cycles = cfg.max_cycles;
    let num_groups = num_groups.clamp(1, n);
    let threads = threads.clamp(1, num_groups);

    // All cross-lane state — the SoA stripes, the tick tape, the group
    // scratch — is allocated up front at fixed capacity, which is what
    // lets the steady-state epochs stay allocation-free (pinned by the
    // alloc-audit battery). Declared to the audit as a paused span so
    // construction never counts against an armed window.
    let (groups, tape) = {
        let _pause = crate::alloc_audit::pause();
        let mut cores: Vec<LaneCore> = sims
            .into_iter()
            .map(|sim| LaneCore {
                sched: TbScheduler::new(sim.workload.num_kernels()),
                sim,
            })
            .collect();
        let mut groups: Vec<Mutex<LaneGroup>> = Vec::with_capacity(num_groups);
        for r in split_ranges(n, num_groups).into_iter().rev() {
            let base = r.start;
            let mut lanes = cores.split_off(base);
            let len = lanes.len();
            let mut soa = HotSoa::new(len);
            for (l, lane) in lanes.iter_mut().enumerate() {
                LaneView {
                    sim: &mut lane.sim,
                    sched: &mut lane.sched,
                    soa: &mut soa,
                    l,
                }
                .refresh_events();
            }
            let num_channels = lanes[0].sim.dram.num_channels();
            groups.push(Mutex::new(LaneGroup {
                base,
                lanes,
                soa,
                active: (0..len).collect(),
                reports: vec![None; len],
                scratch: Scratch {
                    deliveries: Vec::with_capacity(64),
                    completions: Vec::with_capacity(64),
                    replies: Vec::new(),
                    outbound: Vec::new(),
                    banks_buf: Vec::with_capacity(num_channels),
                },
            }));
        }
        groups.reverse();
        let tape = RwLock::new(TickTape {
            bytes: Vec::with_capacity(EPOCH_CYCLES as usize),
            nsum: Vec::with_capacity(EPOCH_CYCLES as usize + 1),
            dsum: Vec::with_capacity(EPOCH_CYCLES as usize + 1),
        });
        (groups, tape)
    };

    if threads <= 1 {
        // Inline transport: the coordinator ticks every group itself.
        return drive(
            &groups,
            &tape,
            noc_per_core,
            dram_per_core,
            max_cycles,
            &mut |plan| {
                let t = tape.read().expect("tick tape poisoned");
                for g in &groups {
                    g.lock().expect("lane group poisoned").run_epoch(plan, &t);
                }
            },
        );
    }

    // Threaded transport: `threads - 1` workers plus the coordinator,
    // groups dealt round-robin, the same spin-then-park epoch barrier
    // the phase-parallel shard engine uses. Workers hold the tape read
    // lock only while ticking; the coordinator refills it between
    // epochs, after `wait_done` proves every reader is parked.
    let ctrl = Ctrl::new(threads - 1);
    std::thread::scope(|scope| {
        for w in 1..threads {
            let ctrl = &ctrl;
            let tape = &tape;
            let groups = &groups;
            let my: Vec<usize> = (w..groups.len()).step_by(threads).collect();
            scope.spawn(move || {
                let mut seen = 0u64;
                while let Some((epoch, plan)) = ctrl.next_epoch(seen) {
                    seen = epoch;
                    {
                        let t = tape.read().expect("tick tape poisoned");
                        for &i in &my {
                            groups[i]
                                .lock()
                                .expect("lane group poisoned")
                                .run_epoch(&plan, &t);
                        }
                    }
                    ctrl.done();
                }
            });
        }
        let mine: Vec<usize> = (0..groups.len()).step_by(threads).collect();
        let reports = drive(
            &groups,
            &tape,
            noc_per_core,
            dram_per_core,
            max_cycles,
            &mut |plan| {
                ctrl.publish(plan);
                {
                    let t = tape.read().expect("tick tape poisoned");
                    for &i in &mine {
                        groups[i]
                            .lock()
                            .expect("lane group poisoned")
                            .run_epoch(plan, &t);
                    }
                }
                ctrl.wait_done();
            },
        );
        ctrl.stop();
        reports
    })
}
