//! # valley-sim
//!
//! A cycle-level GPU memory-system simulator reproducing the evaluation
//! platform of *"Get Out of the Valley"* (Table I): 12 SMs at 1.4 GHz with
//! GTO warp scheduling, per-SM L1 data caches with MSHRs, a memory
//! coalescer feeding the **address mapping unit**, a 12×8 crossbar NoC at
//! 700 MHz, 8 LLC slices (512 KB total, 120-cycle latency) and 4 FR-FCFS
//! GDDR5 channels at 924 MHz (or 64 3D-stacked vaults).
//!
//! The simulator is trace-driven: workloads implement [`WorkloadSource`]
//! (see `valley-workloads`) and the SM side reduces each warp to an
//! in-order stream of compute and memory instructions — everything the
//! paper's mechanisms act on (coalescing, mapping, caching, NoC and DRAM
//! contention) is modeled in full.
//!
//! Run one configuration with [`GpuSim::run`]; the returned [`SimReport`]
//! carries every metric the paper's figures plot.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use valley_core::alloc_audit;
mod batch;
mod coalesce;
mod config;
mod gpu;
pub mod json;
mod llc;
mod metrics;
mod par;
mod sm;
mod trace;
mod txn;
mod wake;

pub use batch::{BatchSim, Batching};
pub use coalesce::{coalesce, coalesce_into};
pub use config::{GpuConfig, LlcWritePolicy, WarpScheduler};
pub use gpu::{GpuSim, Parallelism};
pub use metrics::{EpochHist, ParallelismIntegrator, SimReport, REPORT_SCHEMA_VERSION};
pub use trace::{
    tb_request_addresses, Instruction, KernelSource, LaneAddrs, WarpProgram, WorkloadSource,
};
