//! The memory coalescer: collapses a warp's per-lane addresses into the
//! minimal set of line-sized memory transactions.
//!
//! GPUs coalesce the 32 lane accesses of a memory instruction into unique
//! 128 B transactions. A fully-coalesced row-major access produces one
//! transaction; a column-major (large-stride) access degenerates into 32 —
//! the very pattern whose addresses then exhibit the paper's entropy
//! valley. The paper's address-mapping unit sits *directly after* this
//! stage.

use crate::trace::LaneAddrs;

/// Coalesces lane addresses into unique line-aligned transaction
/// addresses, preserving first-touch order (the order lanes would be
/// serviced).
///
/// # Panics
///
/// Panics if `line_bytes` is not a power of two.
///
/// # Examples
///
/// ```
/// use valley_sim::{coalesce, LaneAddrs};
///
/// // 32 consecutive 4-byte lanes: one 128 B transaction.
/// let a = LaneAddrs::contiguous(0x80, 32, 4);
/// assert_eq!(coalesce(&a, 128), vec![0x80]);
///
/// // Stride-4096 lanes: 32 distinct transactions.
/// let b = LaneAddrs::strided(0, 32, 4096);
/// assert_eq!(coalesce(&b, 128).len(), 32);
/// ```
pub fn coalesce(addrs: &LaneAddrs, line_bytes: u64) -> Vec<u64> {
    let mut out = Vec::with_capacity(4);
    coalesce_into(addrs, line_bytes, &mut out);
    out
}

/// [`coalesce`] into a caller-provided buffer (cleared first) — the
/// allocation-free form the simulator's issue path uses.
///
/// # Panics
///
/// Panics if `line_bytes` is not a power of two.
pub fn coalesce_into(addrs: &LaneAddrs, line_bytes: u64, out: &mut Vec<u64>) {
    assert!(
        line_bytes.is_power_of_two(),
        "transaction size must be a power of two"
    );
    let mask = !(line_bytes - 1);
    out.clear();
    for &a in &addrs.0 {
        let line = a & mask;
        if !out.contains(&line) {
            out.push(line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_coalesced_single_transaction() {
        let a = LaneAddrs::contiguous(0x1000, 32, 4);
        assert_eq!(coalesce(&a, 128), vec![0x1000]);
    }

    #[test]
    fn unaligned_contiguous_spans_two_lines() {
        let a = LaneAddrs::contiguous(0x1040, 32, 4); // 0x1040..0x10c0
        assert_eq!(coalesce(&a, 128), vec![0x1000, 0x1080]);
    }

    #[test]
    fn column_major_degenerates() {
        let a = LaneAddrs::strided(0, 32, 1 << 12);
        let t = coalesce(&a, 128);
        assert_eq!(t.len(), 32);
        assert_eq!(t[1], 1 << 12);
    }

    #[test]
    fn duplicate_lanes_merge() {
        let a = LaneAddrs(vec![0x100, 0x104, 0x100, 0x17f]);
        assert_eq!(coalesce(&a, 128), vec![0x100]);
    }

    #[test]
    fn order_is_first_touch() {
        let a = LaneAddrs(vec![0x200, 0x100, 0x200, 0x000]);
        assert_eq!(coalesce(&a, 128), vec![0x200, 0x100, 0x000]);
    }

    #[test]
    fn empty_warp_is_empty() {
        assert!(coalesce(&LaneAddrs::default(), 128).is_empty());
    }

    #[test]
    fn eight_byte_elements_two_lines() {
        // 32 lanes x 8 B = 256 B = two 128 B transactions (doubles).
        let a = LaneAddrs::contiguous(0, 32, 8);
        assert_eq!(coalesce(&a, 128), vec![0, 128]);
    }
}
