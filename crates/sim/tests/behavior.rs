//! Behavioral tests of the full simulator on hand-built micro-workloads:
//! cache filtering, MSHR merging, write-through stores and kernel
//! serialization, all observable through the `SimReport` counters.

use std::sync::Arc;
use valley_core::{AddressMapper, GddrMap, SchemeKind};
use valley_sim::{GpuConfig, GpuSim, Instruction, LaneAddrs, SimReport};
use valley_workloads::{KernelSpec, Workload};

type Gen = Arc<dyn Fn(u64, usize) -> Vec<Instruction> + Send + Sync>;

fn run_workload(w: Workload) -> SimReport {
    let map = GddrMap::baseline();
    let mapper = AddressMapper::build(SchemeKind::Base, &map, 0);
    GpuSim::new(GpuConfig::table1(), mapper, map, Box::new(w)).run()
}

fn single_kernel(gen: Gen, tbs: u64, warps: usize) -> Workload {
    Workload::new("micro", vec![KernelSpec::new("k", tbs, warps, gen)])
}

#[test]
fn single_coalesced_load() {
    let gen: Gen = Arc::new(|_, _| vec![Instruction::Load(LaneAddrs::contiguous(0x1000, 32, 4))]);
    let r = run_workload(single_kernel(gen, 1, 1));
    assert_eq!(r.memory_transactions, 1);
    assert_eq!(r.llc.accesses(), 1);
    assert_eq!(r.dram.reads, 1);
    assert_eq!(r.l1.misses, 1);
    // Full path: L1 miss + NoC + LLC miss + DRAM + replies; the cycle
    // count must be in a plausible window, not runaway.
    assert!(r.cycles > 50 && r.cycles < 2_000, "cycles = {}", r.cycles);
}

#[test]
fn l1_filters_repeated_loads() {
    // The same line loaded 8 times by one warp: one LLC access, the rest
    // L1 hits.
    let gen: Gen = Arc::new(|_, _| {
        (0..8)
            .map(|_| Instruction::Load(LaneAddrs::contiguous(0x2000, 32, 4)))
            .collect()
    });
    let r = run_workload(single_kernel(gen, 1, 1));
    assert_eq!(r.llc.accesses(), 1);
    assert_eq!(r.l1.hits, 7);
    assert_eq!(r.dram.reads, 1);
}

#[test]
fn mshr_merges_cross_warp_misses() {
    // Two warps of the same TB load the same cold line in back-to-back
    // cycles: the second merges into the first's MSHR entry, so only one
    // LLC access and one DRAM read happen.
    let gen: Gen = Arc::new(|_, _| vec![Instruction::Load(LaneAddrs::contiguous(0x4000, 32, 4))]);
    let r = run_workload(single_kernel(gen, 1, 2));
    assert_eq!(r.memory_transactions, 2);
    assert_eq!(
        r.dram.reads, 1,
        "merged misses must not duplicate DRAM reads"
    );
    assert!(r.llc.accesses() <= 1);
}

#[test]
fn stores_are_write_through_to_dram() {
    let gen: Gen = Arc::new(|_, _| vec![Instruction::Store(LaneAddrs::contiguous(0x8000, 32, 4))]);
    let r = run_workload(single_kernel(gen, 1, 1));
    assert_eq!(r.dram.writes, 1);
    assert_eq!(r.dram.reads, 0);
    // Stores don't block the warp; the run still drains fully.
    assert!(!r.truncated);
}

#[test]
fn uncoalesced_load_explodes_into_transactions() {
    let gen: Gen = Arc::new(|_, _| vec![Instruction::Load(LaneAddrs::strided(0, 32, 4096))]);
    let r = run_workload(single_kernel(gen, 1, 1));
    assert_eq!(r.memory_transactions, 32);
    assert_eq!(r.dram.reads, 32);
}

#[test]
fn compute_only_warps_retire_without_memory() {
    let gen: Gen = Arc::new(|_, _| vec![Instruction::Compute { cycles: 10 }; 5]);
    let r = run_workload(single_kernel(gen, 4, 2));
    assert!(!r.truncated);
    assert_eq!(r.memory_transactions, 0);
    assert_eq!(r.warp_instructions, 4 * 2 * 5);
    assert!(r.cycles >= 50, "5 dependent 10-cycle chains");
}

#[test]
fn kernels_run_serially() {
    let gen: Gen = Arc::new(|_, _| vec![Instruction::Compute { cycles: 100 }]);
    let one = Workload::new("one", vec![KernelSpec::new("k0", 1, 1, gen.clone())]);
    let two = Workload::new(
        "two",
        vec![
            KernelSpec::new("k0", 1, 1, gen.clone()),
            KernelSpec::new("k1", 1, 1, gen),
        ],
    );
    let r1 = run_workload(one);
    let r2 = run_workload(two);
    assert!(
        r2.cycles >= r1.cycles + 100,
        "kernels must not overlap: {} vs {}",
        r2.cycles,
        r1.cycles
    );
    assert_eq!(r2.kernels, 2);
}

#[test]
fn more_tbs_than_slots_still_completes() {
    // 100 TBs of 8 warps on 12 SMs with 6-TB residency: the TB scheduler
    // must stream them through.
    let gen: Gen = Arc::new(|tb, w| {
        vec![Instruction::Load(LaneAddrs::contiguous(
            tb * 65536 + w as u64 * 128,
            32,
            4,
        ))]
    });
    let r = run_workload(single_kernel(gen, 100, 8));
    assert!(!r.truncated);
    assert_eq!(r.memory_transactions, 800);
}

#[test]
fn gto_prefers_greedy_then_oldest() {
    // Indirect check: with many independent compute warps the SM should
    // sustain ~issue_width instructions per cycle per busy SM.
    let gen: Gen = Arc::new(|_, _| vec![Instruction::Compute { cycles: 1 }; 50]);
    let r = run_workload(single_kernel(gen, 12, 8));
    let total_insts = 12 * 8 * 50u64;
    assert_eq!(r.warp_instructions, total_insts);
    // 12 TBs land one per SM; each SM has 8 warps and 2 issue slots:
    // the run must be far faster than serial issue.
    assert!(r.cycles < total_insts / 4, "cycles = {}", r.cycles);
}

#[test]
fn write_back_llc_filters_store_traffic() {
    use valley_sim::LlcWritePolicy;
    // One warp stores to the same line 16 times.
    let gen: Gen = Arc::new(|_, _| {
        (0..16)
            .map(|_| Instruction::Store(LaneAddrs::contiguous(0x2000, 32, 4)))
            .collect()
    });
    let run_policy = |policy: LlcWritePolicy| {
        let map = GddrMap::baseline();
        let mapper = AddressMapper::build(SchemeKind::Base, &map, 0);
        let cfg = GpuConfig::table1().with_llc_write_policy(policy);
        let w = single_kernel(gen.clone(), 1, 1);
        GpuSim::new(cfg, mapper, map, Box::new(w)).run()
    };
    let wt = run_policy(LlcWritePolicy::WriteThrough);
    let wb = run_policy(LlcWritePolicy::WriteBack);
    // Write-through forwards all 16; write-back coalesces them into a
    // dirty line that is never evicted, so DRAM sees no write at all.
    assert_eq!(wt.dram.writes, 16);
    assert_eq!(wb.dram.writes, 0);
    assert!(!wb.truncated);
}

#[test]
fn write_back_evictions_reach_dram() {
    use valley_sim::LlcWritePolicy;
    // Store to more distinct lines than one LLC set holds (8-way, 64
    // sets, 128 B lines): 16 lines mapping to the same set force dirty
    // evictions. Lines at stride 64 sets * 128 B = 8 KiB share a set.
    let gen: Gen = Arc::new(|_, _| {
        (0..16u64)
            .map(|i| Instruction::Store(LaneAddrs::contiguous(i * 64 * 128, 32, 4)))
            .collect()
    });
    let map = GddrMap::baseline();
    let mapper = AddressMapper::build(SchemeKind::Base, &map, 0);
    let cfg = GpuConfig::table1().with_llc_write_policy(LlcWritePolicy::WriteBack);
    let w = single_kernel(gen, 1, 1);
    let r = GpuSim::new(cfg, mapper, map, Box::new(w)).run();
    // All 16 lines hash to distinct slices/sets depending on the slice
    // selector, but at least the overflow beyond total capacity in the
    // hot sets must be written back.
    assert!(
        r.dram.writes >= 1,
        "dirty evictions must reach DRAM (writes = {})",
        r.dram.writes
    );
    assert!(!r.truncated);
}

#[test]
fn report_labels_carry_workload_and_scheme() {
    let gen: Gen = Arc::new(|_, _| vec![Instruction::Compute { cycles: 1 }]);
    let r = run_workload(single_kernel(gen, 1, 1));
    assert_eq!(r.benchmark, "micro");
    assert_eq!(r.scheme, "BASE");
    assert_eq!(r.dram_channels, 4);
    assert_eq!(r.num_sms, 12);
}
