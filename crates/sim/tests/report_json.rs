//! Property tests for the versioned `SimReport` JSON round trip: stored
//! sweep results must either reparse exactly or fail loudly.

use proptest::prelude::*;
use valley_cache::CacheStats;
use valley_dram::DramStats;
use valley_sim::{EpochHist, SimReport, REPORT_SCHEMA_VERSION};

fn report(
    cycles: u64,
    big: u64,
    frac: f64,
    truncated: bool,
    name: String,
    scheme: String,
) -> SimReport {
    SimReport {
        benchmark: name,
        scheme,
        cycles,
        truncated,
        warp_instructions: big,
        thread_instructions: big.wrapping_mul(32),
        memory_transactions: cycles / 2,
        l1: CacheStats {
            hits: big / 3,
            misses: cycles,
            evictions: 7,
        },
        llc: CacheStats {
            hits: 1,
            misses: 2,
            evictions: 3,
        },
        noc_latency: frac * 100.0,
        llc_parallelism: frac * 8.0,
        channel_parallelism: frac * 4.0,
        bank_parallelism: frac * 16.0,
        dram: DramStats {
            activates: big,
            precharges: big / 2,
            reads: cycles,
            writes: cycles / 3,
            row_hits: 5,
            row_empties: 6,
            row_conflicts: 7,
            busy_cycles: big,
            data_bus_cycles: big / 5,
            total_cycles: big,
            total_latency: big,
        },
        kernels: (cycles % 97) as usize,
        dram_cycles: big,
        dram_channels: 4,
        core_clock_ghz: 1.4,
        dram_clock_ghz: 0.924,
        num_sms: 12,
        sm_busy_fraction: frac,
        epoch_hist: EpochHist {
            lengths: [
                cycles,
                big / 7,
                cycles / 3,
                1,
                0,
                2,
                big / 11,
                u64::from(truncated),
            ],
            in_flight_multi: cycles / 5,
        },
    }
}

proptest! {
    /// Serialize → parse reproduces the report exactly, including `u64`
    /// counters beyond f64's 2^53 integer range and arbitrary floats.
    #[test]
    fn round_trip_is_exact(
        cycles in 0u64..=u64::MAX,
        big in (1u64 << 53)..=u64::MAX,
        frac in 0.0f64..=1.0,
        truncated in any::<bool>(),
    ) {
        let r = report(cycles, big, frac, truncated, "MT".into(), "PAE".into());
        let back = SimReport::from_json(&r.to_json()).unwrap();
        // `PartialEq` deliberately ignores the engine diagnostics, so
        // the histogram round trip is pinned separately.
        prop_assert_eq!(back.epoch_hist, r.epoch_hist);
        prop_assert_eq!(back, r);
    }

    /// Any version tag other than the current one is rejected with a
    /// message naming both versions — never silently misparsed.
    #[test]
    fn other_schema_versions_fail_loudly(v in 0u64..1000) {
        prop_assume!(v != u64::from(REPORT_SCHEMA_VERSION));
        let r = report(1, 1 << 60, 0.5, false, "MT".into(), "BASE".into());
        let json = r.to_json().replacen(
            &format!("\"v\":{REPORT_SCHEMA_VERSION}"),
            &format!("\"v\":{v}"),
            1,
        );
        let err = SimReport::from_json(&json).unwrap_err();
        prop_assert!(err.contains("schema version"), "{}", err);
    }

    /// Dropping any field fails loudly (no defaulting of missing data).
    #[test]
    fn missing_fields_fail_loudly(idx in 0usize..23) {
        let r = report(12, 1 << 57, 0.25, true, "LU".into(), "PM".into());
        let json = r.to_json();
        // Strip the idx-th top-level member by rebuilding the object.
        let v = valley_sim::json::parse(&json).unwrap();
        let valley_sim::json::Json::Obj(members) = v else { panic!("not an object") };
        prop_assume!(idx < members.len() && members[idx].0 != "v");
        let kept: Vec<_> = members
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != idx)
            .map(|(_, m)| m.clone())
            .collect();
        let err = SimReport::from_json(
            &valley_sim::json::Json::Obj(kept).to_json_string(),
        )
        .unwrap_err();
        prop_assert!(err.contains("missing field"), "{}", err);
    }
}

#[test]
fn benchmark_names_with_special_chars_survive() {
    let r = report(
        5,
        1 << 54,
        0.1,
        false,
        "weird \"name\"\nwith\tescapes \\ 😀".into(),
        "PAE".into(),
    );
    let back = SimReport::from_json(&r.to_json()).unwrap();
    assert_eq!(back, r);
}

#[test]
fn garbage_fails_loudly() {
    assert!(SimReport::from_json("").is_err());
    assert!(SimReport::from_json("{}").is_err());
    assert!(SimReport::from_json("not json at all").is_err());
}
