//! Randomized batched-engine equivalence battery: for random
//! (machine configuration × mapping scheme × batch width × seeds ×
//! workloads) points, every lane of the lockstep batched engine must
//! reproduce its own sequential evented run's `SimReport` byte for
//! byte — including batches whose lanes differ in workload and mapper
//! seed, so lanes finish at different cycles and drop out of the
//! active set at different times.
//!
//! The proptest shim does not shrink structurally, so on failure the
//! message *is* the minimal reproducer: it pins the exact grid
//! coordinates (including the diverging lane's per-lane seeds) and the
//! first report field that diverged, which replays deterministically
//! through `build_lane`.

use proptest::prelude::*;
use std::sync::Arc;
use valley_core::{AddressMapper, DramAddressMap, GddrMap, SchemeKind};
use valley_sim::{
    BatchSim, GpuConfig, GpuSim, Instruction, LaneAddrs, LlcWritePolicy, Parallelism, SimReport,
    WarpScheduler,
};
use valley_workloads::{KernelSpec, Workload};

/// A splitmix-style hash: cheap, deterministic instruction streams.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A small random workload: `kernels` kernels of `tbs` TBs × `wpb`
/// warps, each warp a deterministic stream of loads (contiguous and
/// strided), stores and compute derived from `seed`.
fn micro_workload(seed: u64, kernels: usize, tbs: u64, wpb: usize) -> Workload {
    let specs = (0..kernels)
        .map(|k| {
            let kseed = mix(seed ^ (k as u64) << 32);
            let gen = Arc::new(move |tb: u64, warp: usize| {
                let mut s = mix(kseed ^ tb.wrapping_mul(0x1_0001) ^ (warp as u64));
                let n = 1 + (s % 10) as usize;
                (0..n)
                    .map(|_| {
                        s = mix(s);
                        let base = (s >> 8) % (1 << 22);
                        match s % 4 {
                            0 => Instruction::Load(LaneAddrs::contiguous(base, 32, 4)),
                            1 => {
                                let stride = 128 << ((s >> 32) % 5);
                                Instruction::Load(LaneAddrs::strided(base, 16, stride))
                            }
                            2 => Instruction::Store(LaneAddrs::contiguous(base, 32, 4)),
                            _ => Instruction::Compute {
                                cycles: 1 + (s >> 16) as u32 % 8,
                            },
                        }
                    })
                    .collect()
            });
            KernelSpec::new(format!("k{k}"), tbs, wpb, gen)
        })
        .collect();
    Workload::new("prop-micro", specs)
}

/// The per-batch machine shape (shared by every lane, as the harness's
/// (config, scale, scheme) grouping guarantees).
#[derive(Clone, Copy)]
struct Shape {
    num_sms: usize,
    llc_slices: usize,
    sched: WarpScheduler,
    policy: LlcWritePolicy,
    scheme: SchemeKind,
}

/// Builds one lane on shared config + map — the same construction path
/// the harness's batch executor uses.
fn build_lane(
    cfg: &Arc<GpuConfig>,
    map: &Arc<dyn DramAddressMap + Send + Sync>,
    shape: Shape,
    map_seed: u64,
    wl: (u64, u64, usize, usize),
) -> GpuSim {
    let (wl_seed, tbs, wpb, kernels) = wl;
    let mapper = AddressMapper::build(shape.scheme, &**map, map_seed);
    GpuSim::with_shared(
        Arc::clone(cfg),
        mapper,
        Arc::clone(map),
        Box::new(micro_workload(wl_seed, kernels, tbs, wpb)),
    )
}

/// Field-by-field report diff — the "first diverging trace entry" the
/// failure message reports.
fn first_divergence(a: &SimReport, b: &SimReport) -> String {
    if a.cycles != b.cycles {
        return format!("cycles: {} vs {}", a.cycles, b.cycles);
    }
    if a.dram != b.dram {
        return format!("dram: {:?} vs {:?}", a.dram, b.dram);
    }
    if a.l1 != b.l1 {
        return format!("l1: {:?} vs {:?}", a.l1, b.l1);
    }
    if a.llc != b.llc {
        return format!("llc: {:?} vs {:?}", a.llc, b.llc);
    }
    if a.memory_transactions != b.memory_transactions {
        return format!(
            "memory_transactions: {} vs {}",
            a.memory_transactions, b.memory_transactions
        );
    }
    if a.warp_instructions != b.warp_instructions {
        return format!(
            "warp_instructions: {} vs {}",
            a.warp_instructions, b.warp_instructions
        );
    }
    format!("json: {} vs {}", a.results_json(), b.results_json())
}

const SLICE_CHOICES: [usize; 3] = [2, 4, 8];

/// Deterministic batched(2,3,5,8) × groups(1,2,4) grid over every
/// mapping scheme: each cell of the composed engine (lane groups ticked
/// with `threads = groups`, so groups > 1 runs the threaded epoch
/// barrier) must reproduce the per-lane sequential reports bit for bit.
/// The failure message carries the full reproducer coordinates.
#[test]
fn batched_width_by_group_grid_matches_sequential() {
    const WIDTHS: [usize; 4] = [2, 3, 5, 8];
    const GROUPS: [usize; 3] = [1, 2, 4];
    let map: Arc<dyn DramAddressMap + Send + Sync> = Arc::new(GddrMap::baseline());
    for (si, &scheme) in SchemeKind::ALL_SCHEMES.iter().enumerate() {
        let shape = Shape {
            num_sms: 2,
            llc_slices: 4,
            sched: WarpScheduler::Gto,
            policy: LlcWritePolicy::WriteThrough,
            scheme,
        };
        let mut cfg = GpuConfig::table1()
            .with_sms(shape.num_sms)
            .with_scheduler(shape.sched)
            .with_llc_write_policy(shape.policy);
        cfg.llc_slices = shape.llc_slices;
        let cfg = Arc::new(cfg);
        // Per-lane mapper seeds and workload seeds derive from the lane
        // index, like a sweep's seed × benchmark axes.
        let lane_coords: Vec<(u64, (u64, u64, usize, usize))> = (0..8)
            .map(|lane| {
                let l = lane as u64;
                (l % 4, (mix(0xBA7C4 ^ ((si as u64) << 8) ^ l), 4, 1, 1))
            })
            .collect();
        let goldens: Vec<SimReport> = lane_coords
            .iter()
            .map(|&(map_seed, wl)| {
                build_lane(&cfg, &map, shape, map_seed, wl).run_with(Parallelism::Off)
            })
            .collect();
        assert!(goldens[0].cycles > 0, "degenerate grid simulated nothing");
        for width in WIDTHS {
            for groups in GROUPS {
                let sims = lane_coords[..width]
                    .iter()
                    .map(|&(map_seed, wl)| build_lane(&cfg, &map, shape, map_seed, wl))
                    .collect();
                let reports = BatchSim::new(sims).run_grouped(groups, groups);
                for (lane, (batched, golden)) in reports.iter().zip(&goldens[..width]).enumerate() {
                    let (map_seed, (wl_seed, ..)) = lane_coords[lane];
                    assert!(
                        batched.results_json() == golden.results_json(),
                        "composed batched engine diverged: scheme={scheme:?} \
                         width={width} groups={groups} threads={groups} lane={lane} \
                         map_seed={map_seed} wl=(tbs=4,wpb=1,seed={wl_seed:#x},kernels=1) \
                         sms=2 slices=4 sched=Gto policy=WriteThrough \
                         — first divergence: {}",
                        first_divergence(golden, batched)
                    );
                }
            }
        }
    }
}

proptest! {
    #[test]
    fn batched_engine_matches_sequential_for_random_grids(
        num_sms in 1usize..7,
        slice_idx in 0usize..3,
        knobs in (0u8..2, 0u8..2),
        scheme_idx in 0usize..6,
        width in 2usize..9,
        tbs in 1u64..14,
        wpb in 1usize..4,
        wl_seed in 0u64..u64::MAX,
        kernels in 1usize..3,
    ) {
        let shape = Shape {
            num_sms,
            llc_slices: SLICE_CHOICES[slice_idx],
            sched: if knobs.0 == 0 { WarpScheduler::Gto } else { WarpScheduler::Lrr },
            policy: if knobs.1 == 0 { LlcWritePolicy::WriteThrough } else { LlcWritePolicy::WriteBack },
            scheme: SchemeKind::ALL_SCHEMES[scheme_idx],
        };
        let mut cfg = GpuConfig::table1()
            .with_sms(shape.num_sms)
            .with_scheduler(shape.sched)
            .with_llc_write_policy(shape.policy);
        cfg.llc_slices = shape.llc_slices;
        let cfg = Arc::new(cfg);
        let map: Arc<dyn DramAddressMap + Send + Sync> = Arc::new(GddrMap::baseline());
        // Lanes share the machine shape but not the data: per-lane
        // mapper seeds and workload seeds derive from the lane index,
        // like a sweep's seed × benchmark axes.
        let lane_coords: Vec<(u64, (u64, u64, usize, usize))> = (0..width)
            .map(|lane| {
                let l = lane as u64;
                (l % 4, (mix(wl_seed ^ l), tbs, wpb, kernels))
            })
            .collect();
        // Explicitly sequential baselines: `.run()` honors
        // VALLEY_SIM_THREADS, and under that env the baseline would
        // silently become a parallel run, no longer pinning
        // sequential ≡ batched.
        let goldens: Vec<SimReport> = lane_coords
            .iter()
            .map(|&(map_seed, wl)| {
                build_lane(&cfg, &map, shape, map_seed, wl).run_with(Parallelism::Off)
            })
            .collect();
        let sims = lane_coords
            .iter()
            .map(|&(map_seed, wl)| build_lane(&cfg, &map, shape, map_seed, wl))
            .collect();
        let reports = BatchSim::new(sims).run();
        prop_assert!(reports.len() == width, "lane count mismatch");
        for (lane, (batched, golden)) in reports.iter().zip(&goldens).enumerate() {
            let (map_seed, (lane_wl_seed, ..)) = lane_coords[lane];
            prop_assert!(
                batched.results_json() == golden.results_json(),
                "batched engine diverged: sms={num_sms} slices={} sched={:?} \
                 policy={:?} scheme={:?} width={width} lane={lane} \
                 map_seed={map_seed} wl=(tbs={tbs},wpb={wpb},seed={lane_wl_seed:#x},\
                 kernels={kernels}) [derived from wl_seed={wl_seed:#x}] \
                 — first divergence: {}",
                shape.llc_slices, shape.sched, shape.policy, shape.scheme,
                first_divergence(golden, batched)
            );
        }
        prop_assert!(goldens[0].cycles > 0, "degenerate case simulated nothing");
    }
}
