//! Randomized cross-thread equivalence battery: for random
//! (machine configuration × mapping scheme × shard count × seed ×
//! workload) points, the phase-parallel engine must reproduce the
//! sequential evented engine's `SimReport` byte for byte.
//!
//! The proptest shim does not shrink structurally, so on failure the
//! message *is* the minimal reproducer: it pins the exact grid
//! coordinates and the first report field that diverged (the start of
//! the diverging trace), which replays deterministically through
//! `replay_case`.

use proptest::prelude::*;
use std::sync::Arc;
use valley_core::{AddressMapper, GddrMap, SchemeKind};
use valley_sim::{
    GpuConfig, GpuSim, Instruction, LaneAddrs, LlcWritePolicy, Parallelism, SimReport,
    WarpScheduler,
};
use valley_workloads::{KernelSpec, Workload};

/// A splitmix-style hash: cheap, deterministic instruction streams.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A small random workload: `kernels` kernels of `tbs` TBs × `wpb`
/// warps, each warp a deterministic stream of loads (contiguous and
/// strided — the paper's valley pattern), stores and compute derived
/// from `seed`.
fn micro_workload(seed: u64, kernels: usize, tbs: u64, wpb: usize) -> Workload {
    let specs = (0..kernels)
        .map(|k| {
            let kseed = mix(seed ^ (k as u64) << 32);
            let gen = Arc::new(move |tb: u64, warp: usize| {
                let mut s = mix(kseed ^ tb.wrapping_mul(0x1_0001) ^ (warp as u64));
                let n = 1 + (s % 10) as usize;
                (0..n)
                    .map(|_| {
                        s = mix(s);
                        let base = (s >> 8) % (1 << 22);
                        match s % 4 {
                            0 => Instruction::Load(LaneAddrs::contiguous(base, 32, 4)),
                            1 => {
                                let stride = 128 << ((s >> 32) % 5);
                                Instruction::Load(LaneAddrs::strided(base, 16, stride))
                            }
                            2 => Instruction::Store(LaneAddrs::contiguous(base, 32, 4)),
                            _ => Instruction::Compute {
                                cycles: 1 + (s >> 16) as u32 % 8,
                            },
                        }
                    })
                    .collect()
            });
            KernelSpec::new(format!("k{k}"), tbs, wpb, gen)
        })
        .collect();
    Workload::new("prop-micro", specs)
}

#[allow(clippy::too_many_arguments)]
fn replay_case(
    num_sms: usize,
    llc_slices: usize,
    sched: WarpScheduler,
    policy: LlcWritePolicy,
    scheme: SchemeKind,
    map_seed: u64,
    wl: (u64, usize, u64, usize),
) -> (GpuSim, GpuSim) {
    let (wl_seed, kernels, tbs, wpb) = (wl.2, wl.3, wl.0, wl.1);
    let build = || {
        let mut cfg = GpuConfig::table1()
            .with_sms(num_sms)
            .with_scheduler(sched)
            .with_llc_write_policy(policy);
        cfg.llc_slices = llc_slices;
        let map = GddrMap::baseline();
        let mapper = AddressMapper::build(scheme, &map, map_seed);
        GpuSim::new(
            cfg,
            mapper,
            map,
            Box::new(micro_workload(wl_seed, kernels, tbs, wpb)),
        )
    };
    (build(), build())
}

/// Field-by-field report diff — the "first diverging trace entry" the
/// failure message reports.
fn first_divergence(a: &SimReport, b: &SimReport) -> String {
    if a.cycles != b.cycles {
        return format!("cycles: {} vs {}", a.cycles, b.cycles);
    }
    if a.dram != b.dram {
        return format!("dram: {:?} vs {:?}", a.dram, b.dram);
    }
    if a.l1 != b.l1 {
        return format!("l1: {:?} vs {:?}", a.l1, b.l1);
    }
    if a.llc != b.llc {
        return format!("llc: {:?} vs {:?}", a.llc, b.llc);
    }
    if a.memory_transactions != b.memory_transactions {
        return format!(
            "memory_transactions: {} vs {}",
            a.memory_transactions, b.memory_transactions
        );
    }
    if a.warp_instructions != b.warp_instructions {
        return format!(
            "warp_instructions: {} vs {}",
            a.warp_instructions, b.warp_instructions
        );
    }
    // Fall back to the serialized forms (results only — the epoch
    // histogram is engine telemetry and legitimately differs).
    format!("json: {} vs {}", a.results_json(), b.results_json())
}

const SLICE_CHOICES: [usize; 3] = [2, 4, 8];

proptest! {
    #[test]
    fn sharded_engine_matches_sequential_for_random_grids(
        num_sms in 1usize..7,
        slice_idx in 0usize..3,
        knobs in (0u8..2, 0u8..2),
        scheme_idx in 0usize..6,
        map_seed in 0u64..4,
        shards in 2usize..8,
        threads_pick in 0u8..4,
        tbs in 1u64..14,
        wpb in 1usize..4,
        wl_seed in 0u64..u64::MAX,
        kernels in 1usize..3,
    ) {
        let llc_slices = SLICE_CHOICES[slice_idx];
        let sched = if knobs.0 == 0 { WarpScheduler::Gto } else { WarpScheduler::Lrr };
        let policy = if knobs.1 == 0 { LlcWritePolicy::WriteThrough } else { LlcWritePolicy::WriteBack };
        let scheme = SchemeKind::ALL_SCHEMES[scheme_idx];
        // Mostly the inline transport (fast on small machines); every
        // fourth case pins the threaded transport too.
        let threads = if threads_pick == 3 { 2 } else { 1 };
        let (seq_sim, par_sim) = replay_case(
            num_sms, llc_slices, sched, policy, scheme, map_seed,
            (tbs, wpb, wl_seed, kernels),
        );
        // Explicitly sequential: `.run()` honors VALLEY_SIM_THREADS, and
        // under that env the baseline would silently become a second
        // parallel run, no longer pinning sequential ≡ parallel.
        let seq = seq_sim.run_with(Parallelism::Off);
        let par = par_sim.run_sharded(shards, threads);
        prop_assert!(
            seq.results_json() == par.results_json(),
            "sharded engine diverged: sms={num_sms} slices={llc_slices} sched={sched:?} \
             policy={policy:?} scheme={scheme:?} map_seed={map_seed} shards={shards} \
             threads={threads} wl=(tbs={tbs},wpb={wpb},seed={wl_seed:#x},kernels={kernels}) \
             — first divergence: {}",
            first_divergence(&seq, &par)
        );
        prop_assert!(seq.cycles > 0, "degenerate case simulated nothing");
    }
}
