//! Steady-state allocation audit: a counting global allocator proves
//! that the simulator's tick loops allocate nothing once warmed up —
//! the zero-alloc claim the engines' hot-loop buffer reuse is built on.
//!
//! Each test runs a workload once to learn its cycle count, then arms
//! an audit window over a mid-run span (away from construction and
//! from report building at termination) and re-runs, asserting that no
//! unpaused allocation landed inside the window. Allocations the
//! engines legitimately perform mid-run — workload instruction
//! generation, arena growth — are bracketed with `alloc_audit::pause`
//! at their sites and surface in `paused_allocs`, which the tests also
//! check to prove the window actually armed.
//!
//! Requires `--features alloc-audit`; without it the hooks are empty
//! and this file compiles to nothing.
#![cfg(feature = "alloc-audit")]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::{Arc, Mutex};
use valley_core::{AddressMapper, GddrMap, SchemeKind};
use valley_sim::{alloc_audit, BatchSim, GpuConfig, GpuSim, Instruction, LaneAddrs, Parallelism};
use valley_workloads::{KernelSpec, Workload};

/// Counts every heap allocation into the audit before delegating to the
/// system allocator. Frees are not interesting — the claim is about
/// acquiring memory in the steady state, and a free implies a matching
/// earlier alloc anyway.
struct CountingAlloc;

/// Prints a backtrace for the first few violating allocations, so a
/// failing run names the offending site instead of just a count. The
/// pause guard keeps the capture's own allocations out of the span
/// counter (they land in `paused_allocs`, which is test-visible but
/// only asserted non-zero).
static TRACED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn trace_violation(size: usize) {
    if alloc_audit::violation_imminent() {
        let _p = alloc_audit::pause();
        if TRACED.fetch_add(1, std::sync::atomic::Ordering::Relaxed) < 6 {
            eprintln!(
                "steady-state allocation of {size} bytes:\n{}",
                std::backtrace::Backtrace::force_capture()
            );
        }
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        trace_violation(layout.size());
        alloc_audit::on_alloc();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        trace_violation(layout.size());
        alloc_audit::on_alloc();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        trace_violation(layout.size());
        alloc_audit::on_alloc();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The audit counters are process-global; serialize the tests so one
/// test's armed window never sees another's allocations. A poisoned
/// lock only means another audit test failed — still safe to proceed.
static AUDIT_LOCK: Mutex<()> = Mutex::new(());

fn audit_lock() -> std::sync::MutexGuard<'static, ()> {
    AUDIT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A sustained workload: every warp issues a long interleaved stream of
/// coalesced loads, strided loads and stores across distinct regions,
/// so TB issue, coalescing, cache, NoC and DRAM traffic all stay busy
/// deep into the run (keeping mid-run audit windows non-vacuous).
fn sustained_workload(tbs: u64, warps: usize, insts: usize) -> Workload {
    let gen = Arc::new(move |tb: u64, warp: usize| {
        let base = (tb << 22) | ((warp as u64) << 14);
        (0..insts)
            .map(|i| {
                let addr = base + (i as u64) * 256;
                match i % 3 {
                    0 => Instruction::Load(LaneAddrs::contiguous(addr, 32, 4)),
                    1 => Instruction::Load(LaneAddrs::strided(addr, 16, 512)),
                    _ => Instruction::Store(LaneAddrs::contiguous(addr, 32, 4)),
                }
            })
            .collect()
    });
    Workload::new("audit", vec![KernelSpec::new("k", tbs, warps, gen)])
}

fn build_sim(tbs: u64, warps: usize, insts: usize) -> GpuSim {
    let map = GddrMap::baseline();
    let mapper = AddressMapper::build(SchemeKind::Base, &map, 0);
    GpuSim::new(
        GpuConfig::table1(),
        mapper,
        map,
        Box::new(sustained_workload(tbs, warps, insts)),
    )
}

/// Runs `run` twice: once unaudited to learn the total cycle count,
/// then with an audit window over `window(total_cycles)`, returning
/// (span_allocs, paused_allocs) observed inside the armed window.
fn audit<R>(
    build: impl Fn() -> R,
    run: impl Fn(R) -> u64,
    window: impl Fn(u64) -> (u64, u64),
) -> (u64, u64) {
    let total = run(build());
    let (start, end) = window(total);
    assert!(
        start < end && end <= total,
        "window [{start}, {end}) must sit inside the {total}-cycle run"
    );
    alloc_audit::set_window(start, end);
    run(build());
    (alloc_audit::span_allocs(), alloc_audit::paused_allocs())
}

#[test]
fn dense_steady_state_allocates_nothing() {
    let _guard = audit_lock();
    let (span, paused) = audit(
        || build_sim(24, 4, 48),
        |sim| sim.run_dense().cycles,
        // Mid-run: past construction/warm-up, short of drain/teardown.
        |total| (total / 4, total * 3 / 4),
    );
    assert_eq!(span, 0, "dense tick loop allocated mid-run");
    assert!(paused > 0, "window never armed or no declared sites fired");
}

#[test]
fn evented_steady_state_allocates_nothing() {
    let _guard = audit_lock();
    let (span, paused) = audit(
        || build_sim(24, 4, 48),
        |sim| sim.run_with(Parallelism::Off).cycles,
        |total| (total / 4, total * 3 / 4),
    );
    assert_eq!(span, 0, "evented tick loop allocated mid-run");
    assert!(paused > 0, "window never armed or no declared sites fired");
}

#[test]
fn batched_epoch_allocates_nothing() {
    let _guard = audit_lock();
    // The batched driver checks the audit window once per 32768-cycle
    // epoch, so the workload must span several epochs and the window
    // must cover exactly one interior epoch — one where no lane
    // terminates (termination builds that lane's report).
    const EPOCH: u64 = 32768;
    let lanes = || {
        (0..4)
            .map(|_| build_sim(96, 4, 96))
            .collect::<Vec<GpuSim>>()
    };
    let (span, paused) = audit(
        lanes,
        |sims| {
            BatchSim::new(sims)
                .run()
                .iter()
                .map(|r| r.cycles)
                .max()
                .unwrap()
        },
        |total| {
            assert!(
                total >= 3 * EPOCH,
                "workload too short ({total} cycles) to isolate an interior epoch"
            );
            (EPOCH, 2 * EPOCH)
        },
    );
    assert_eq!(span, 0, "batched epoch allocated mid-run");
    assert!(paused > 0, "window never armed or no declared sites fired");
}
