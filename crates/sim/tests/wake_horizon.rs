//! Regression tests for the per-unit wake-gate safe horizon: the
//! phase-parallel engine must run multi-cycle epochs in memory-saturated
//! phases — the regime where the old global-minimum gating (`sms_next` /
//! reply-net flit-movement minima) pinned every epoch at one cycle as
//! soon as any reply was in flight anywhere.

use std::sync::Arc;
use valley_core::{AddressMapper, GddrMap, SchemeKind};
use valley_sim::{GpuConfig, GpuSim, Instruction, LaneAddrs, Parallelism};
use valley_workloads::{KernelSpec, Workload};

/// A memory-saturating micro workload: every warp issues a burst of
/// strided loads (uncoalescable — one transaction per lane group) and
/// then stalls on them, so the machine spends nearly all of its time
/// with SMs parked on MSHRs while the LLC/DRAM side stays busy and
/// replies stream back — the paper's entropy-valley regime in miniature.
fn memory_saturated_workload() -> Workload {
    let gen = Arc::new(move |tb: u64, warp: usize| {
        let base = (tb * 8 + warp as u64) << 14;
        (0..12)
            .map(|i| Instruction::Load(LaneAddrs::strided(base + i * 32, 16, 512)))
            .collect()
    });
    Workload::new("wake-saturate", vec![KernelSpec::new("k0", 24, 2, gen)])
}

fn build() -> GpuSim {
    let map = GddrMap::baseline();
    let mapper = AddressMapper::build(SchemeKind::Base, &map, 1);
    GpuSim::new(
        GpuConfig::table1(),
        mapper,
        map,
        Box::new(memory_saturated_workload()),
    )
}

/// Multi-cycle epochs must occur *while replies are in flight* — before
/// the per-port delivery gates this was structurally (near) impossible:
/// a streaming reply moved a flit every NoC cycle, so the global
/// reply-net movement minimum clamped the horizon of every shard —
/// including shards none of whose SMs the reply could wake — to one
/// cycle for the whole saturated phase.
#[test]
fn saturated_phase_runs_multi_cycle_epochs_with_replies_in_flight() {
    let seq = build().run_with(Parallelism::Off);
    assert!(!seq.truncated);
    for shards in [2, 4] {
        let par = build().run_sharded(shards, 1);
        assert_eq!(
            par.results_json(),
            seq.results_json(),
            "parallel({shards}) diverged from sequential"
        );
        let h = &par.epoch_hist;
        assert!(h.epochs() > 0, "parallel({shards}): no epochs recorded");
        assert!(
            h.multi_cycle() > 0,
            "parallel({shards}): every epoch was one cycle — the wake \
             gates are not extending the horizon: {h:?}"
        );
        // The headline regression: a reply in flight on one shard's
        // reply ports no longer collapses every other shard's horizon.
        assert!(
            h.in_flight_multi > 0,
            "parallel({shards}): no multi-cycle epoch overlapped an \
             in-flight reply — the delivery gates are not being used: {h:?}"
        );
    }
}

/// The histogram is engine telemetry: sequential runs report none, and
/// it must never leak into result equality or the results JSON.
#[test]
fn histogram_is_telemetry_not_a_result() {
    let seq = build().run_with(Parallelism::Off);
    assert_eq!(seq.epoch_hist.epochs(), 0);
    let par = build().run_sharded(2, 1);
    assert_ne!(par.epoch_hist.epochs(), 0);
    // Result equality and canonical result bytes agree across engines…
    assert_eq!(seq, par);
    assert_eq!(seq.results_json(), par.results_json());
    // …while the full serialization carries the diagnostics.
    assert_ne!(seq.to_json(), par.to_json());
    assert!(par.to_json().contains("epoch_hist"));
}
