//! Cross-crate integration: the entropy analysis and the simulator must
//! tell a consistent story, and the power model must react to the
//! simulator's counters the way the paper describes.

use valley::core::{AddressMapper, DramAddressMap, GddrMap, SchemeKind};
use valley::power::DramPowerModel;
use valley::sim::{GpuConfig, GpuSim, SimReport};
use valley::workloads::{analysis, Benchmark, Scale};

fn run(bench: Benchmark, scheme: SchemeKind, seed: u64) -> SimReport {
    let map = GddrMap::baseline();
    let mapper = AddressMapper::build(scheme, &map, seed);
    GpuSim::new(
        GpuConfig::table1(),
        mapper,
        map,
        Box::new(bench.workload(Scale::Test)),
    )
    .run()
}

#[test]
fn valley_classification_matches_paper_groups() {
    // The entropy analyzer must classify all ten valley benchmarks as
    // valleys and none of the six non-valley ones (Figure 5's split),
    // at reference scale with the paper's window of 12.
    let map = GddrMap::baseline();
    let targets = map.target_field_bits();
    let candidates = map.non_block_bits();
    for b in Benchmark::ALL {
        let w = b.workload(Scale::Ref);
        let p = analysis::application_profile(&w, 12, None);
        assert_eq!(
            p.has_valley(&targets, &candidates, 0.25),
            b.has_valley(),
            "{b}: valley classification mismatch (score {:.2})",
            p.valley_score(&targets, &candidates)
        );
    }
}

#[test]
fn pae_lifts_target_bit_entropy_without_touching_rows() {
    let map = GddrMap::baseline();
    let targets = map.target_field_bits();
    let mt = Benchmark::Mt.workload(Scale::Test);
    let base = analysis::application_profile(&mt, 12, None);
    let pae_mapper = AddressMapper::build(SchemeKind::Pae, &map, 1);
    let pae = analysis::application_profile(&mt, 12, Some(&pae_mapper));
    assert!(pae.mean_over(&targets) > base.mean_over(&targets) + 0.2);
    // PAE leaves column bits untouched: bits 6,7 and 14..17 identical.
    for b in [6u8, 7, 14, 15, 16, 17] {
        assert!(
            (pae.bit(b) - base.bit(b)).abs() < 1e-9,
            "PAE must not rewrite column bit {b}"
        );
    }
}

#[test]
fn all_rewrites_every_non_block_bit_profile() {
    let map = GddrMap::baseline();
    let mt = Benchmark::Mt.workload(Scale::Test);
    let base = analysis::application_profile(&mt, 12, None);
    let all_mapper = AddressMapper::build(SchemeKind::All, &map, 1);
    let all = analysis::application_profile(&mt, 12, Some(&all_mapper));
    // ALL spreads entropy into bits where BASE had none (Figure 10f).
    let lifted = (6..30u8)
        .filter(|&b| all.bit(b) > base.bit(b) + 0.3)
        .count();
    assert!(lifted >= 6, "ALL lifted only {lifted} bits");
}

#[test]
fn activate_counts_drive_activate_power() {
    // The Figure 15 → Figure 16 causal chain: a scheme with a lower
    // row-buffer hit rate must show higher activate power on the same
    // benchmark (comparing the extremes, PAE vs ALL, on SRAD2 whose
    // same-row groups ALL scatters).
    let pae = run(Benchmark::Srad2, SchemeKind::Pae, 1);
    let all = run(Benchmark::Srad2, SchemeKind::All, 1);
    let model = DramPowerModel::gddr5();
    if all.row_buffer_hit_rate() < pae.row_buffer_hit_rate() - 0.05 {
        // More misses -> more ACTs per access.
        let acts_per_access_pae = pae.dram.activates as f64 / pae.dram.accesses() as f64;
        let acts_per_access_all = all.dram.activates as f64 / all.dram.accesses() as f64;
        assert!(
            acts_per_access_all > acts_per_access_pae,
            "ALL {acts_per_access_all:.3} vs PAE {acts_per_access_pae:.3}"
        );
    }
    // Power model monotonicity on raw counters regardless.
    let p = model.evaluate(&pae);
    assert!(p.total() > p.background);
}

#[test]
fn mapper_latency_is_charged() {
    // BASE has a 0-cycle mapping unit; every other scheme pays 1 cycle
    // on the L1 hit path. On an L1-resident workload the BASE run must
    // not be slower than the identity-with-latency run.
    let map = GddrMap::baseline();
    let base = run(Benchmark::Nn, SchemeKind::Base, 0);
    // An identity BIM wrapped as a non-BASE scheme: same mapping, 1-cycle
    // latency.
    let identity = AddressMapper::from_bim(SchemeKind::Rmp, valley::core::Bim::identity(30), 1);
    let slow = GpuSim::new(
        GpuConfig::table1(),
        identity,
        map,
        Box::new(Benchmark::Nn.workload(Scale::Test)),
    )
    .run();
    assert!(slow.cycles >= base.cycles, "latency must cost cycles");
}

#[test]
fn per_channel_load_balance_improves_under_pae() {
    // Count per-channel DRAM accesses directly: the coefficient of
    // variation across channels must shrink under PAE on MT.
    let base = run(Benchmark::Mt, SchemeKind::Base, 0);
    let pae = run(Benchmark::Mt, SchemeKind::Pae, 1);
    assert!(pae.channel_parallelism > base.channel_parallelism);
    // The paper's multiplier effect: total outstanding parallelism is the
    // product of channel- and (per-channel) bank-level parallelism.
    let total = |r: &SimReport| r.channel_parallelism * r.bank_parallelism;
    assert!(
        total(&pae) > total(&base),
        "total parallelism must rise: PAE {:.2} vs BASE {:.2}",
        total(&pae),
        total(&base)
    );
}
