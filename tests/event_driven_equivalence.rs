//! The event-driven fast path must be an *exact* optimization: for any
//! (benchmark, scheme) pair, `GpuSim::run` and the dense reference loop
//! `GpuSim::run_dense` must produce bit-identical cycle counts, DRAM
//! statistics and cache statistics. These tests pin that contract for a
//! spread of workload behaviors: streaming (SP), the paper's headline
//! valley benchmark (MT), and a pointer-chasing random workload (MUM).

use valley::core::{AddressMapper, GddrMap, SchemeKind};
use valley::sim::{GpuConfig, GpuSim, SimReport};
use valley::workloads::{Benchmark, Scale};

fn build(bench: Benchmark, scheme: SchemeKind) -> GpuSim {
    let map = GddrMap::baseline();
    let mapper = AddressMapper::build(scheme, &map, 1);
    GpuSim::new(
        GpuConfig::table1(),
        mapper,
        map,
        Box::new(bench.workload(Scale::Test)),
    )
}

fn assert_equivalent(bench: Benchmark, scheme: SchemeKind) {
    let fast: SimReport = build(bench, scheme).run();
    let dense: SimReport = build(bench, scheme).run_dense();
    let tag = format!("{bench:?}/{scheme:?}");
    assert_eq!(fast.cycles, dense.cycles, "{tag}: cycle count diverged");
    assert_eq!(fast.dram, dense.dram, "{tag}: DRAM stats diverged");
    assert_eq!(fast.l1, dense.l1, "{tag}: L1 stats diverged");
    assert_eq!(fast.llc, dense.llc, "{tag}: LLC stats diverged");
    assert_eq!(
        fast.dram_cycles, dense.dram_cycles,
        "{tag}: DRAM clock diverged"
    );
    assert_eq!(
        fast.warp_instructions, dense.warp_instructions,
        "{tag}: instruction count diverged"
    );
    assert_eq!(
        fast.memory_transactions, dense.memory_transactions,
        "{tag}: transaction count diverged"
    );
    assert_eq!(
        fast.truncated, dense.truncated,
        "{tag}: truncation diverged"
    );
    assert_eq!(fast.kernels, dense.kernels, "{tag}: kernel count diverged");
    // The parallelism integrals are sums of identical integer samples.
    assert_eq!(
        fast.llc_parallelism.to_bits(),
        dense.llc_parallelism.to_bits(),
        "{tag}: LLC parallelism diverged"
    );
    assert_eq!(
        fast.bank_parallelism.to_bits(),
        dense.bank_parallelism.to_bits(),
        "{tag}: bank parallelism diverged"
    );
    // And the fast path must not be a trivial no-op either: the run did
    // real work.
    assert!(
        fast.cycles > 0 && fast.memory_transactions > 0,
        "{tag}: empty run"
    );
}

#[test]
fn streaming_benchmark_base_scheme() {
    assert_equivalent(Benchmark::Sp, SchemeKind::Base);
}

#[test]
fn valley_benchmark_base_and_pae() {
    assert_equivalent(Benchmark::Mt, SchemeKind::Base);
    assert_equivalent(Benchmark::Mt, SchemeKind::Pae);
}

#[test]
fn random_benchmark_fae_scheme() {
    assert_equivalent(Benchmark::Mum, SchemeKind::Fae);
}

#[test]
fn fcfs_scheduling_policy_equivalence() {
    // The indexed bank scheduler serves both arbitration policies; pin
    // the FCFS path (the scheduling-orthogonality ablation) end to end.
    let build = || {
        let mut cfg = GpuConfig::table1();
        cfg.dram.policy = valley::dram::SchedulingPolicy::Fcfs;
        let map = GddrMap::baseline();
        let mapper = AddressMapper::build(SchemeKind::Base, &map, 1);
        GpuSim::new(
            cfg,
            mapper,
            map,
            Box::new(Benchmark::Mt.workload(Scale::Test)),
        )
    };
    let fast = build().run();
    let dense = build().run_dense();
    assert_eq!(fast.cycles, dense.cycles, "fcfs: cycle count diverged");
    assert_eq!(fast.dram, dense.dram, "fcfs: DRAM stats diverged");
    assert_eq!(fast.llc, dense.llc, "fcfs: LLC stats diverged");
    assert!(fast.cycles > 0 && fast.memory_transactions > 0, "empty run");
}

#[test]
fn stacked_memory_equivalence() {
    use valley::core::StackedMap;
    let build = || {
        let map = StackedMap::baseline();
        let mapper = AddressMapper::build(SchemeKind::Pae, &map, 1);
        GpuSim::new(
            GpuConfig::stacked(),
            mapper,
            map,
            Box::new(Benchmark::Sp.workload(Scale::Test)),
        )
    };
    let fast = build().run();
    let dense = build().run_dense();
    assert_eq!(fast.cycles, dense.cycles, "stacked: cycle count diverged");
    assert_eq!(fast.dram, dense.dram, "stacked: DRAM stats diverged");
    assert_eq!(fast.llc, dense.llc, "stacked: LLC stats diverged");
}
