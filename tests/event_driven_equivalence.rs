//! The event-driven fast path and the phase-parallel engine must both be
//! *exact* optimizations: for any (benchmark, scheme) pair,
//! `GpuSim::run`, the dense reference loop `GpuSim::run_dense`, and the
//! sharded engine `GpuSim::run_sharded(n, t)` must produce bit-identical
//! results — cycle counts, every counter, and the full `SimReport` JSON
//! — for every shard count and worker-thread count. These tests pin that
//! contract for a spread of workload behaviors: streaming (SP), the
//! paper's headline valley benchmark (MT), and a pointer-chasing random
//! workload (MUM); the randomized cross-product battery lives in
//! `crates/sim/tests/parallel_equivalence.rs`.

use valley::core::{AddressMapper, GddrMap, SchemeKind};
use valley::sim::{BatchSim, GpuConfig, GpuSim, SimReport};
use valley::workloads::{Benchmark, Scale};

/// The shard counts the battery pins: even/odd splits of the 12 SMs and
/// 4 memory groups, plus one (7) that leaves some shards without any
/// memory group.
const SHARD_COUNTS: [usize; 4] = [2, 3, 4, 7];

/// The batch widths the battery pins: the minimal batch, odd widths, and
/// one wide enough that early-finishing lanes drop out well before the
/// batch drains.
const BATCH_WIDTHS: [usize; 4] = [2, 3, 5, 8];

/// The lane-group counts the batched grid pins: 1 is the inline SoA
/// driver, 2 and 4 partition the lanes across concurrent groups (the
/// batch × threads composition), including counts that don't divide
/// the width evenly.
const GROUP_COUNTS: [usize; 3] = [1, 2, 4];

fn build(bench: Benchmark, scheme: SchemeKind) -> GpuSim {
    let map = GddrMap::baseline();
    let mapper = AddressMapper::build(scheme, &map, 1);
    GpuSim::new(
        GpuConfig::table1(),
        mapper,
        map,
        Box::new(bench.workload(Scale::Test)),
    )
}

fn assert_equivalent(bench: Benchmark, scheme: SchemeKind) {
    let fast: SimReport = build(bench, scheme).run();
    let dense: SimReport = build(bench, scheme).run_dense();
    let tag = format!("{bench:?}/{scheme:?}");
    assert_eq!(fast.cycles, dense.cycles, "{tag}: cycle count diverged");
    assert_eq!(fast.dram, dense.dram, "{tag}: DRAM stats diverged");
    assert_eq!(fast.l1, dense.l1, "{tag}: L1 stats diverged");
    assert_eq!(fast.llc, dense.llc, "{tag}: LLC stats diverged");
    assert_eq!(
        fast.dram_cycles, dense.dram_cycles,
        "{tag}: DRAM clock diverged"
    );
    assert_eq!(
        fast.warp_instructions, dense.warp_instructions,
        "{tag}: instruction count diverged"
    );
    assert_eq!(
        fast.memory_transactions, dense.memory_transactions,
        "{tag}: transaction count diverged"
    );
    assert_eq!(
        fast.truncated, dense.truncated,
        "{tag}: truncation diverged"
    );
    assert_eq!(fast.kernels, dense.kernels, "{tag}: kernel count diverged");
    // The parallelism integrals are sums of identical integer samples.
    assert_eq!(
        fast.llc_parallelism.to_bits(),
        dense.llc_parallelism.to_bits(),
        "{tag}: LLC parallelism diverged"
    );
    assert_eq!(
        fast.bank_parallelism.to_bits(),
        dense.bank_parallelism.to_bits(),
        "{tag}: bank parallelism diverged"
    );
    // The full results JSON pins every remaining field (floats included
    // — bit-identical inputs serialize to identical digit strings).
    // `results_json` is the canonical byte form of the simulation
    // *results*; the epoch-length histogram is engine telemetry and is
    // the one field allowed to differ between engines.
    assert_eq!(
        fast.results_json(),
        dense.results_json(),
        "{tag}: report JSON diverged"
    );
    // And the fast path must not be a trivial no-op either: the run did
    // real work.
    assert!(
        fast.cycles > 0 && fast.memory_transactions > 0,
        "{tag}: empty run"
    );
    // The dense reference loop has no epochs to report. (`fast` may be
    // either engine — `run()` honors `VALLEY_SIM_THREADS`, and the CI
    // matrix runs this battery under it.)
    assert_eq!(dense.epoch_hist.epochs(), 0, "{tag}: dense epochs?");

    // Phase-parallel engine: every shard count must reproduce the
    // sequential report byte for byte.
    let golden = fast.results_json();
    for shards in SHARD_COUNTS {
        let par = build(bench, scheme).run_sharded(shards, 1);
        assert_eq!(par.cycles, fast.cycles, "{tag}: parallel({shards}) cycles");
        assert_eq!(
            par.results_json(),
            golden,
            "{tag}: parallel({shards}) report JSON diverged from sequential"
        );
        assert!(
            par.epoch_hist.epochs() > 0,
            "{tag}: parallel({shards}) recorded no epochs"
        );
    }

    // Batched lockstep engine, batched(width) × groups grid: every lane
    // of every cell must reproduce the sequential report byte for byte.
    for width in BATCH_WIDTHS {
        // Env-honoring entry point — the CI matrix runs this battery
        // under VALLEY_SIM_THREADS, composing batch × threads here.
        let sims = (0..width).map(|_| build(bench, scheme)).collect();
        for (lane, report) in BatchSim::new(sims).run().into_iter().enumerate() {
            assert_eq!(
                report.results_json(),
                golden,
                "{tag}: batch({width}) lane {lane} report JSON diverged from sequential"
            );
        }
        // Pinned group counts, threads = groups (threaded transport for
        // groups > 1), independent of the machine and the environment.
        for groups in GROUP_COUNTS {
            let sims = (0..width).map(|_| build(bench, scheme)).collect();
            let reports = BatchSim::new(sims).run_grouped(groups, groups);
            for (lane, report) in reports.into_iter().enumerate() {
                assert_eq!(
                    report.results_json(),
                    golden,
                    "{tag}: composed batch diverged from sequential at \
                     width={width} groups={groups} threads={groups} lane={lane} \
                     (rebuild with build({bench:?}, {scheme:?}) and replay \
                     BatchSim::run_grouped({groups}, {groups}) at that width)"
                );
            }
        }
    }
}

#[test]
fn streaming_benchmark_base_scheme() {
    assert_equivalent(Benchmark::Sp, SchemeKind::Base);
}

#[test]
fn valley_benchmark_base_and_pae() {
    assert_equivalent(Benchmark::Mt, SchemeKind::Base);
    assert_equivalent(Benchmark::Mt, SchemeKind::Pae);
}

#[test]
fn random_benchmark_fae_scheme() {
    assert_equivalent(Benchmark::Mum, SchemeKind::Fae);
}

#[test]
fn threaded_transport_is_bit_identical() {
    // Worker threads are pure transport: the same shard count must give
    // the same bytes whether the shards tick inline (threads = 1) or on
    // parked worker threads — including more shards than threads, which
    // exercises the multi-shard-per-worker path.
    let golden = build(Benchmark::Mt, SchemeKind::Pae).run().results_json();
    for (shards, threads) in [(4, 2), (4, 4), (7, 3)] {
        let par = build(Benchmark::Mt, SchemeKind::Pae).run_sharded(shards, threads);
        assert_eq!(
            par.results_json(),
            golden,
            "MT/PAE parallel({shards} shards, {threads} threads) diverged"
        );
    }
    // Same contract for the batched engine's group transport: fewer
    // threads than groups exercises the multi-group-per-worker path.
    for (groups, threads) in [(4, 2), (4, 4), (3, 2)] {
        let sims = (0..5)
            .map(|_| build(Benchmark::Mt, SchemeKind::Pae))
            .collect();
        for (lane, report) in BatchSim::new(sims)
            .run_grouped(groups, threads)
            .into_iter()
            .enumerate()
        {
            assert_eq!(
                report.results_json(),
                golden,
                "MT/PAE batch(width=5, {groups} groups, {threads} threads) lane {lane} diverged"
            );
        }
    }
}

#[test]
fn fcfs_scheduling_policy_equivalence() {
    // The indexed bank scheduler serves both arbitration policies; pin
    // the FCFS path (the scheduling-orthogonality ablation) end to end.
    let build = || {
        let mut cfg = GpuConfig::table1();
        cfg.dram.policy = valley::dram::SchedulingPolicy::Fcfs;
        let map = GddrMap::baseline();
        let mapper = AddressMapper::build(SchemeKind::Base, &map, 1);
        GpuSim::new(
            cfg,
            mapper,
            map,
            Box::new(Benchmark::Mt.workload(Scale::Test)),
        )
    };
    let fast = build().run();
    let dense = build().run_dense();
    assert_eq!(fast.cycles, dense.cycles, "fcfs: cycle count diverged");
    assert_eq!(fast.dram, dense.dram, "fcfs: DRAM stats diverged");
    assert_eq!(fast.llc, dense.llc, "fcfs: LLC stats diverged");
    assert!(fast.cycles > 0 && fast.memory_transactions > 0, "empty run");
    let par = build().run_sharded(4, 1);
    assert_eq!(
        par.results_json(),
        fast.results_json(),
        "fcfs: parallel(4) diverged"
    );
    for (lane, report) in BatchSim::new((0..3).map(|_| build()).collect())
        .run()
        .into_iter()
        .enumerate()
    {
        assert_eq!(
            report.results_json(),
            fast.results_json(),
            "fcfs: batch(3) lane {lane} diverged"
        );
    }
}

#[test]
fn stacked_memory_equivalence() {
    use valley::core::StackedMap;
    let build = || {
        let map = StackedMap::baseline();
        let mapper = AddressMapper::build(SchemeKind::Pae, &map, 1);
        GpuSim::new(
            GpuConfig::stacked(),
            mapper,
            map,
            Box::new(Benchmark::Sp.workload(Scale::Test)),
        )
    };
    let fast = build().run();
    let dense = build().run_dense();
    assert_eq!(fast.cycles, dense.cycles, "stacked: cycle count diverged");
    assert_eq!(fast.dram, dense.dram, "stacked: DRAM stats diverged");
    assert_eq!(fast.llc, dense.llc, "stacked: LLC stats diverged");
    // 64 vaults interleave across 8 slices: shards own strided channel
    // sets here, the other memory-group topology.
    for shards in [2, 5, 8] {
        let par = build().run_sharded(shards, 1);
        assert_eq!(
            par.results_json(),
            fast.results_json(),
            "stacked: parallel({shards}) diverged"
        );
    }
    for (lane, report) in BatchSim::new((0..4).map(|_| build()).collect())
        .run()
        .into_iter()
        .enumerate()
    {
        assert_eq!(
            report.results_json(),
            fast.results_json(),
            "stacked: batch(4) lane {lane} diverged"
        );
    }
}

#[test]
fn mixed_lane_batch_is_bit_identical() {
    // The harness batches by (config, scale, scheme) but nothing in the
    // engine requires lanes to share a workload or mapper — pin the
    // general case: one batch mixing benchmarks, schemes and seeds, each
    // lane byte-identical to its solo sequential run. The lanes finish
    // at different cycles, exercising early drop-out from the active
    // set.
    let cases: Vec<(Benchmark, SchemeKind, u64)> = vec![
        (Benchmark::Mt, SchemeKind::Base, 1),
        (Benchmark::Sp, SchemeKind::Pae, 1),
        (Benchmark::Mum, SchemeKind::Fae, 7),
        (Benchmark::Mt, SchemeKind::All, 3),
    ];
    let build_one = |&(bench, scheme, seed): &(Benchmark, SchemeKind, u64)| {
        let map = GddrMap::baseline();
        let mapper = AddressMapper::build(scheme, &map, seed);
        GpuSim::new(
            GpuConfig::table1(),
            mapper,
            map,
            Box::new(bench.workload(Scale::Test)),
        )
    };
    let goldens: Vec<String> = cases
        .iter()
        .map(|c| build_one(c).run().results_json())
        .collect();
    let sims = cases.iter().map(build_one).collect();
    for (lane, report) in BatchSim::new(sims).run().into_iter().enumerate() {
        let (bench, scheme, seed) = cases[lane];
        assert_eq!(
            report.results_json(),
            goldens[lane],
            "mixed batch lane {lane} ({bench:?}/{scheme:?}/seed {seed}) diverged"
        );
    }
}
