//! End-to-end integration tests: the full pipeline (workload → coalescer
//! → mapper → L1 → NoC → LLC → DRAM) at test scale.

use valley::core::{AddressMapper, GddrMap, SchemeKind, StackedMap};
use valley::sim::{GpuConfig, GpuSim, SimReport};
use valley::workloads::{Benchmark, Scale};

fn run(bench: Benchmark, scheme: SchemeKind, seed: u64) -> SimReport {
    let map = GddrMap::baseline();
    let mapper = AddressMapper::build(scheme, &map, seed);
    let sim = GpuSim::new(
        GpuConfig::table1(),
        mapper,
        map,
        Box::new(bench.workload(Scale::Test)),
    );
    sim.run()
}

#[test]
fn every_benchmark_terminates_under_every_scheme() {
    for bench in Benchmark::ALL {
        for scheme in SchemeKind::ALL_SCHEMES {
            let r = run(bench, scheme, 1);
            assert!(!r.truncated, "{bench}/{scheme} hit the cycle limit");
            assert!(r.cycles > 0);
            assert!(r.warp_instructions > 0, "{bench}: no instructions issued");
            assert!(r.memory_transactions > 0, "{bench}: no memory traffic");
        }
    }
}

#[test]
fn metrics_are_sane() {
    for bench in [Benchmark::Mt, Benchmark::Mum, Benchmark::Gs] {
        let r = run(bench, SchemeKind::Pae, 1);
        assert!(
            (0.0..=1.0).contains(&r.llc_miss_rate()),
            "{bench} miss rate"
        );
        assert!(
            (0.0..=1.0).contains(&r.row_buffer_hit_rate()),
            "{bench} row hit rate"
        );
        assert!((0.0..=1.0).contains(&r.sm_busy_fraction));
        assert!(r.noc_latency >= 0.0);
        assert!(r.llc_parallelism >= 0.0 && r.llc_parallelism <= 8.0);
        assert!(r.channel_parallelism >= 0.0 && r.channel_parallelism <= 4.0);
        assert!(r.bank_parallelism >= 0.0 && r.bank_parallelism <= 16.0);
        // Conservation: every DRAM access stems from an LLC access.
        assert!(r.dram.accesses() <= r.llc.accesses() + r.llc.misses);
        // L1 sees at least as many accesses as LLC load traffic.
        assert!(r.l1.accesses() > 0);
    }
}

#[test]
fn runs_are_deterministic() {
    let a = run(Benchmark::Sc, SchemeKind::Fae, 7);
    let b = run(Benchmark::Sc, SchemeKind::Fae, 7);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.memory_transactions, b.memory_transactions);
    assert_eq!(a.dram.activates, b.dram.activates);
    assert_eq!(a.llc.misses, b.llc.misses);
}

#[test]
fn pae_beats_base_on_valley_benchmarks() {
    // The headline result, at test scale, for the two motivating
    // benchmarks of the paper's Figure 12 left panel.
    for bench in [Benchmark::Mt, Benchmark::Nw] {
        let base = run(bench, SchemeKind::Base, 0);
        let pae = run(bench, SchemeKind::Pae, 1);
        let speedup = pae.speedup_over(&base);
        assert!(
            speedup > 1.5,
            "{bench}: PAE speedup {speedup:.2} too small at test scale"
        );
    }
}

#[test]
fn mapping_barely_moves_non_valley_benchmarks() {
    let base = run(Benchmark::Lm, SchemeKind::Base, 0);
    let pae = run(Benchmark::Lm, SchemeKind::Pae, 1);
    let speedup = pae.speedup_over(&base);
    assert!(
        (0.7..=1.4).contains(&speedup),
        "LM should be mapping-insensitive, got {speedup:.2}"
    );
}

#[test]
fn pae_raises_channel_parallelism_on_mt() {
    let base = run(Benchmark::Mt, SchemeKind::Base, 0);
    let pae = run(Benchmark::Mt, SchemeKind::Pae, 1);
    assert!(
        pae.channel_parallelism > base.channel_parallelism + 0.5,
        "PAE {:.2} vs BASE {:.2}",
        pae.channel_parallelism,
        base.channel_parallelism
    );
    assert!(pae.noc_latency < base.noc_latency);
}

#[test]
fn stacked_memory_configuration_runs() {
    let map = StackedMap::baseline();
    let mapper = AddressMapper::build(SchemeKind::Pae, &map, 1);
    let sim = GpuSim::new(
        GpuConfig::stacked(),
        mapper,
        map,
        Box::new(Benchmark::Sp.workload(Scale::Test)),
    );
    let r = sim.run();
    assert!(!r.truncated);
    assert_eq!(r.dram_channels, 64);
    assert!(r.cycles > 0);
}

#[test]
fn alternative_substrate_policies_run() {
    use valley::dram::SchedulingPolicy;
    use valley::sim::WarpScheduler;
    let map = GddrMap::baseline();
    let mut cfg = GpuConfig::table1().with_scheduler(WarpScheduler::Lrr);
    cfg.dram.policy = SchedulingPolicy::Fcfs;
    let mapper = AddressMapper::build(SchemeKind::Pae, &map, 1);
    let sim = GpuSim::new(
        cfg,
        mapper,
        map,
        Box::new(Benchmark::Mt.workload(Scale::Test)),
    );
    let r = sim.run();
    assert!(!r.truncated);
    assert!(r.cycles > 0);
    // LRR + FCFS must still retire every transaction.
    assert!(r.dram.accesses() > 0);
}

#[test]
fn fcfs_degrades_row_locality_vs_frfcfs() {
    use valley::dram::SchedulingPolicy;
    let map = GddrMap::baseline();
    let run_policy = |policy: SchedulingPolicy| {
        let mut cfg = GpuConfig::table1();
        cfg.dram.policy = policy;
        let mapper = AddressMapper::build(SchemeKind::Base, &map, 0);
        GpuSim::new(
            cfg,
            mapper,
            map,
            Box::new(Benchmark::Srad2.workload(Scale::Test)),
        )
        .run()
    };
    let fr = run_policy(SchedulingPolicy::FrFcfs);
    let fcfs = run_policy(SchedulingPolicy::Fcfs);
    // Row-hit-first reordering can only help (or tie on) row locality.
    assert!(
        fr.row_buffer_hit_rate() >= fcfs.row_buffer_hit_rate() - 0.02,
        "FR-FCFS {:.3} vs FCFS {:.3}",
        fr.row_buffer_hit_rate(),
        fcfs.row_buffer_hit_rate()
    );
}

#[test]
fn sm_count_sweep_runs() {
    for sms in [12usize, 24, 48] {
        let map = GddrMap::baseline();
        let mapper = AddressMapper::build(SchemeKind::Fae, &map, 1);
        let sim = GpuSim::new(
            GpuConfig::table1().with_sms(sms),
            mapper,
            map,
            Box::new(Benchmark::Hs.workload(Scale::Test)),
        );
        let r = sim.run();
        assert!(!r.truncated, "{sms} SMs truncated");
        assert_eq!(r.num_sms, sms);
    }
}
