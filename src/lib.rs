//! # valley
//!
//! Facade crate for the Valley reproduction of *"Get Out of the Valley:
//! Power-Efficient Address Mapping for GPUs"* (Liu et al., ISCA 2018).
//!
//! Re-exports the workspace crates under one roof:
//!
//! * [`core`] — BIM-based address mapping schemes and window-based entropy;
//! * [`dram`] — GDDR5 / 3D-stacked DRAM with FR-FCFS;
//! * [`cache`] — set-associative caches and MSHRs;
//! * [`noc`] — the SM↔LLC crossbar;
//! * [`sim`] — the full GPU memory-system simulator;
//! * [`workloads`] — the 16 synthetic GPU-compute benchmarks;
//! * [`power`] — DRAM and GPU power models;
//! * [`harness`] — the sharded, resumable sweep engine and its
//!   content-addressed result store (see `docs/harness.md`);
//! * [`fabric`] — the distributed sweep fabric: `valley serve` /
//!   `valley work` coordinator/worker protocol with crash-tolerant job
//!   leases and a read-side query endpoint.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

#![warn(missing_docs)]

pub use valley_cache as cache;
pub use valley_core as core;
pub use valley_dram as dram;
pub use valley_fabric as fabric;
pub use valley_harness as harness;
pub use valley_noc as noc;
pub use valley_power as power;
pub use valley_sim as sim;
pub use valley_workloads as workloads;
