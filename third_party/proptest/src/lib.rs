//! Offline, dependency-free shim for the `proptest` crate.
//!
//! Implements the subset the Valley workspace uses: the [`proptest!`] macro
//! over functions whose arguments are drawn from strategies, integer-range /
//! tuple / [`collection::vec`] / [`any`] strategies, and the
//! `prop_assert*` / [`prop_assume!`] macros. Cases are generated from a
//! deterministic per-test seed; there is **no shrinking** — a failure
//! reports the offending generated values via the assertion message.
//!
//! The number of cases per property defaults to 64 and can be raised with
//! the `PROPTEST_CASES` environment variable.

#![warn(missing_docs)]

/// A deterministic SplitMix64 generator driving case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (stable across runs).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by [`prop_assume!`]; try another input.
    Reject,
    /// An assertion failed; the property is falsified.
    Fail(String),
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for ::std::ops::Range<$t> {
            type Value = $t;
            #[inline]
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for ::std::ops::RangeInclusive<$t> {
            type Value = $t;
            #[inline]
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for ::std::ops::Range<f64> {
    type Value = f64;
    #[inline]
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let v = self.start + u * (self.end - self.start);
        // start + u*(end-start) can round up to the excluded end bound
        // (e.g. when the span is a few ULPs); fold that case back.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl Strategy for ::std::ops::RangeInclusive<f64> {
    type Value = f64;
    #[inline]
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64; // [0, 1]
        lo + u * (hi - lo)
    }
}

/// Types with a canonical "anything" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    #[inline]
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[inline]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize);

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    #[inline]
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T` (shim: `bool` and unsigned integers).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
        )
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// An inclusive-exclusive length range for [`vec`].
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        sizes: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.sizes.hi - self.sizes.lo) as u64;
            let len = self.sizes.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// A strategy for `Vec`s of `elem` values with lengths drawn from
    /// `sizes` (a `usize` for exact lengths, or a range).
    pub fn vec<S: Strategy>(elem: S, sizes: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            sizes: sizes.into(),
        }
    }
}

/// Number of generated cases per property.
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Runs `f` for [`cases`] accepted inputs, panicking on the first failure.
/// Rejections ([`prop_assume!`]) draw a replacement case, up to a 10×
/// rejection budget.
pub fn run_cases<F>(name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let target = cases();
    let mut rng = TestRng::from_name(name);
    let mut accepted = 0usize;
    let mut attempts = 0usize;
    while accepted < target {
        attempts += 1;
        assert!(
            attempts <= target * 10,
            "proptest shim: {name} rejected too many cases ({accepted}/{target} accepted)"
        );
        match f(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest case failed (attempt {attempts}): {msg}")
            }
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |prop_rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), prop_rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {} != {} (both {:?})",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Rejects the current case, drawing a fresh one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in 0usize..=4, b in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!(b == b);
        }

        #[test]
        fn vec_lengths(v in collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            for e in &v {
                prop_assert!(*e < 5);
            }
        }

        #[test]
        fn assume_rejects(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x % 2, 1);
        }
    }
}
