//! Offline, dependency-free shim for the `proptest` crate.
//!
//! Implements the subset the Valley workspace uses: the [`proptest!`] macro
//! over functions whose arguments are drawn from strategies, integer-range /
//! tuple / [`collection::vec`] / [`any`] strategies, and the
//! `prop_assert*` / [`prop_assume!`] macros. Cases are generated from a
//! deterministic per-test seed.
//!
//! Failures **shrink**: integer strategies bisect toward their lower
//! bound, tuples shrink coordinate-wise and vectors shed length, with
//! the greedy loop keeping any smaller input that still fails. The
//! panic reports both the minimal failing input (via `Debug`) and its
//! assertion message — which, by this workspace's convention of
//! formatting every generated coordinate into `prop_assert!` messages,
//! still pins the exact reproducer even for strategies that don't
//! shrink (floats, exotic compositions).
//!
//! The number of cases per property defaults to 64 and can be raised with
//! the `PROPTEST_CASES` environment variable.

#![warn(missing_docs)]

/// A deterministic SplitMix64 generator driving case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (stable across runs).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by [`prop_assume!`]; try another input.
    Reject,
    /// An assertion failed; the property is falsified.
    Fail(String),
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
    /// Appends smaller candidates derived from a failing `value`, most
    /// aggressive first. The default — no candidates — means "cannot
    /// shrink", which is always sound: the runner then reports the
    /// original failing value.
    fn shrink(&self, value: &Self::Value, out: &mut Vec<Self::Value>) {
        let _ = (value, out);
    }
}

/// Pushes the integer bisection candidates for a failing `v` drawn from
/// `[lo, ..]`: the bound itself, the midpoint, and the predecessor —
/// ordered most aggressive first so the greedy loop converges in
/// `O(log)` rounds.
macro_rules! int_shrink {
    ($v:expr, $lo:expr, $out:expr) => {{
        let (v, lo) = ($v, $lo);
        if v != lo {
            $out.push(lo);
            let mid = lo + (v - lo) / 2;
            if mid != lo && mid != v {
                $out.push(mid);
            }
            if v - 1 != mid && v - 1 != lo {
                $out.push(v - 1);
            }
        }
    }};
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for ::std::ops::Range<$t> {
            type Value = $t;
            #[inline]
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
            fn shrink(&self, value: &$t, out: &mut Vec<$t>) {
                int_shrink!(*value, self.start, out);
            }
        }
        impl Strategy for ::std::ops::RangeInclusive<$t> {
            type Value = $t;
            #[inline]
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
            fn shrink(&self, value: &$t, out: &mut Vec<$t>) {
                int_shrink!(*value, *self.start(), out);
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for ::std::ops::Range<f64> {
    type Value = f64;
    #[inline]
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let v = self.start + u * (self.end - self.start);
        // start + u*(end-start) can round up to the excluded end bound
        // (e.g. when the span is a few ULPs); fold that case back.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl Strategy for ::std::ops::RangeInclusive<f64> {
    type Value = f64;
    #[inline]
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64; // [0, 1]
        lo + u * (hi - lo)
    }
}

/// Types with a canonical "anything" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
    /// Appends smaller candidates for a failing value (see
    /// [`Strategy::shrink`]). Default: none.
    fn shrink(value: &Self, out: &mut Vec<Self>) {
        let _ = (value, out);
    }
}

impl Arbitrary for bool {
    #[inline]
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
    fn shrink(value: &bool, out: &mut Vec<bool>) {
        if *value {
            out.push(false);
        }
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[inline]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
            fn shrink(value: &$t, out: &mut Vec<$t>) {
                int_shrink!(*value, 0, out);
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize);

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    #[inline]
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
    fn shrink(&self, value: &T, out: &mut Vec<T>) {
        T::shrink(value, out);
    }
}

/// The strategy of all values of `T` (shim: `bool` and unsigned integers).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Tuple strategies sample per coordinate and shrink coordinate-wise:
/// each candidate shrinks one coordinate while cloning the rest, so the
/// greedy runner performs coordinate descent toward the joint minimum.
macro_rules! impl_tuple_strategy {
    ($($S:ident / $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+)
        where
            $($S::Value: Clone),+
        {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
            fn shrink(&self, value: &Self::Value, out: &mut Vec<Self::Value>) {
                $(
                    {
                        let mut c = Vec::new();
                        self.$idx.shrink(&value.$idx, &mut c);
                        for s in c {
                            let mut v = value.clone();
                            v.$idx = s;
                            out.push(v);
                        }
                    }
                )+
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);
impl_tuple_strategy!(
    A / 0,
    B / 1,
    C / 2,
    D / 3,
    E / 4,
    F / 5,
    G / 6,
    H / 7,
    I / 8
);
impl_tuple_strategy!(
    A / 0,
    B / 1,
    C / 2,
    D / 3,
    E / 4,
    F / 5,
    G / 6,
    H / 7,
    I / 8,
    J / 9
);
impl_tuple_strategy!(
    A / 0,
    B / 1,
    C / 2,
    D / 3,
    E / 4,
    F / 5,
    G / 6,
    H / 7,
    I / 8,
    J / 9,
    K / 10
);
impl_tuple_strategy!(
    A / 0,
    B / 1,
    C / 2,
    D / 3,
    E / 4,
    F / 5,
    G / 6,
    H / 7,
    I / 8,
    J / 9,
    K / 10,
    L / 11
);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// An inclusive-exclusive length range for [`vec`].
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        sizes: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.sizes.hi - self.sizes.lo) as u64;
            let len = self.sizes.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
        fn shrink(&self, value: &Self::Value, out: &mut Vec<Self::Value>) {
            // Length first (most aggressive: minimum, half, one less),
            // then element-wise shrinks at the surviving length.
            let lo = self.sizes.lo;
            let len = value.len();
            if len > lo {
                out.push(value[..lo].to_vec());
                let half = lo + (len - lo) / 2;
                if half != lo && half != len {
                    out.push(value[..half].to_vec());
                }
                if len - 1 != half && len - 1 != lo {
                    out.push(value[..len - 1].to_vec());
                }
            }
            let mut c = Vec::new();
            for i in 0..len {
                self.elem.shrink(&value[i], &mut c);
                for s in c.drain(..) {
                    let mut v = value.clone();
                    v[i] = s;
                    out.push(v);
                }
            }
        }
    }

    /// A strategy for `Vec`s of `elem` values with lengths drawn from
    /// `sizes` (a `usize` for exact lengths, or a range).
    pub fn vec<S: Strategy>(elem: S, sizes: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            sizes: sizes.into(),
        }
    }
}

/// Number of generated cases per property.
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Runs `f` for [`cases`] accepted inputs, panicking on the first failure.
/// Rejections ([`prop_assume!`]) draw a replacement case, up to a 10×
/// rejection budget.
pub fn run_cases<F>(name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let target = cases();
    let mut rng = TestRng::from_name(name);
    let mut accepted = 0usize;
    let mut attempts = 0usize;
    while accepted < target {
        attempts += 1;
        assert!(
            attempts <= target * 10,
            "proptest shim: {name} rejected too many cases ({accepted}/{target} accepted)"
        );
        match f(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest case failed (attempt {attempts}): {msg}")
            }
        }
    }
}

/// Cap on failing-candidate evaluations during one shrink (each greedy
/// round re-derives candidates, so bisection converges well under it;
/// the cap only guards pathological strategies).
const SHRINK_BUDGET: usize = 1024;

/// Greedily minimizes a failing `value`: keeps any shrink candidate
/// that still fails and restarts from it, until no candidate fails or
/// the budget runs out. Returns the minimal value, its failure message
/// and how many candidates were evaluated.
fn shrink_failure<S, F>(
    strat: &S,
    mut value: S::Value,
    mut msg: String,
    f: &mut F,
) -> (S::Value, String, usize)
where
    S: Strategy,
    F: FnMut(&S::Value) -> Result<(), TestCaseError>,
{
    let mut evaluated = 0usize;
    let mut candidates = Vec::new();
    'progress: loop {
        candidates.clear();
        strat.shrink(&value, &mut candidates);
        for cand in candidates.drain(..) {
            if evaluated >= SHRINK_BUDGET {
                break 'progress;
            }
            evaluated += 1;
            // A rejected candidate is simply not a failure; skip it.
            if let Err(TestCaseError::Fail(m)) = f(&cand) {
                value = cand;
                msg = m;
                continue 'progress;
            }
        }
        break;
    }
    (value, msg, evaluated)
}

/// [`run_cases`] over a single strategy (typically the tuple bundling a
/// property's arguments), with shrinking: on failure the input is
/// greedily minimized and the panic reports both the minimal input and
/// its assertion message.
pub fn run_cases_shrinking<S, F>(name: &str, strat: S, mut f: F)
where
    S: Strategy,
    S::Value: std::fmt::Debug,
    F: FnMut(&S::Value) -> Result<(), TestCaseError>,
{
    let target = cases();
    let mut rng = TestRng::from_name(name);
    let mut accepted = 0usize;
    let mut attempts = 0usize;
    while accepted < target {
        attempts += 1;
        assert!(
            attempts <= target * 10,
            "proptest shim: {name} rejected too many cases ({accepted}/{target} accepted)"
        );
        let value = strat.sample(&mut rng);
        match f(&value) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                let (minimal, min_msg, evaluated) = shrink_failure(&strat, value, msg, &mut f);
                panic!(
                    "proptest case failed (attempt {attempts}, \
                     {evaluated} shrink candidate(s) tried): {min_msg}\n\
                     minimal failing input: {minimal:?}"
                )
            }
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs, with
/// failures shrunk to a minimal input (see [`run_cases_shrinking`]).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases_shrinking(stringify!($name), ($(($strat),)+), |prop_value| {
                    let ($($arg,)+) = ::std::clone::Clone::clone(prop_value);
                    #[allow(clippy::redundant_closure_call)]
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        // Bound to a plain bool so negating it never negates a float
        // comparison in caller code (clippy: neg_cmp_op_on_partial_ord).
        let cond: bool = $cond;
        if !cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {} != {} (both {:?})",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Rejects the current case, drawing a fresh one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in 0usize..=4, b in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!(b == b);
        }

        #[test]
        fn vec_lengths(v in collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            for e in &v {
                prop_assert!(*e < 5);
            }
        }

        #[test]
        fn assume_rejects(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x % 2, 1);
        }
    }

    /// Runs a failing property and returns its panic message.
    fn failure_message(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
        let err = std::panic::catch_unwind(f).expect_err("property should fail");
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload should be a string")
    }

    #[test]
    fn integer_failures_shrink_to_the_boundary() {
        // Fails for x >= 17; bisection from any failing draw must land
        // exactly on the boundary value.
        let msg = failure_message(|| {
            crate::run_cases_shrinking("int_shrink", (3u64..1000,), |&(x,)| {
                prop_assert!(x < 17, "x = {x}");
                Ok(())
            })
        });
        assert!(
            msg.contains("minimal failing input: (17,)"),
            "unexpected message: {msg}"
        );
    }

    #[test]
    fn tuple_failures_shrink_coordinate_wise() {
        // Fails iff x >= 3 && y >= 5: coordinate descent must reach the
        // joint minimum (3, 5) regardless of the original draw.
        let msg = failure_message(|| {
            crate::run_cases_shrinking("tuple_shrink", (0u64..100, 0usize..100), |&(x, y)| {
                prop_assert!(x < 3 || y < 5, "x = {x}, y = {y}");
                Ok(())
            })
        });
        assert!(
            msg.contains("minimal failing input: (3, 5)"),
            "unexpected message: {msg}"
        );
    }

    #[test]
    fn vec_failures_shed_length_and_shrink_elements() {
        // Fails for any vec with >= 3 elements: minimal is 3 zeros.
        let msg = failure_message(|| {
            crate::run_cases_shrinking("vec_shrink", (collection::vec(0u32..50, 0..20),), |(v,)| {
                prop_assert!(v.len() < 3, "len = {}", v.len());
                Ok(())
            })
        });
        assert!(
            msg.contains("minimal failing input: ([0, 0, 0],)"),
            "unexpected message: {msg}"
        );
    }

    #[test]
    fn shrinking_keeps_the_assertion_message_of_the_minimal_case() {
        let msg = failure_message(|| {
            crate::run_cases_shrinking("msg_follows", (0u64..1000,), |&(x,)| {
                prop_assert!(x < 40, "saw x = {x}");
                Ok(())
            })
        });
        assert!(msg.contains("saw x = 40"), "unexpected message: {msg}");
    }

    #[test]
    fn unshrinkable_strategies_still_report_the_failure() {
        // Floats have no shrinker; the original draw must be reported.
        let msg = failure_message(|| {
            crate::run_cases_shrinking("no_shrinker", (0.5f64..1.0,), |&(x,)| {
                prop_assert!(x < 0.25, "x = {x}");
                Ok(())
            })
        });
        assert!(
            msg.contains("0 shrink candidate(s) tried"),
            "unexpected message: {msg}"
        );
        assert!(msg.contains("minimal failing input: ("));
    }
}
