//! Offline, dependency-free shim for the `criterion` benchmarking crate.
//!
//! Implements the subset used by `crates/bench/benches/`: [`Criterion`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] (with
//! `sample_size` and `finish`), [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Methodology: each benchmark is calibrated so one sample runs for roughly
//! [`TARGET_SAMPLE`], then `sample_size` samples are collected and the
//! **median** time per iteration is reported on stdout as
//! `criterion-shim: <name> <ns> ns/iter`, a line format the repository's
//! tooling greps for perf tracking.

#![warn(missing_docs)]

use std::hint::black_box as bb;
use std::time::{Duration, Instant};

/// Target wall time of one sample during calibration.
const TARGET_SAMPLE: Duration = Duration::from_millis(10);

/// Default number of samples per benchmark.
const DEFAULT_SAMPLES: usize = 15;

/// Drives the closure under measurement.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the sample's iteration count, timing the whole batch.
    /// The return value is passed through [`std::hint::black_box`] so the
    /// optimizer cannot elide the work.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            bb(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark driver (shim).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLES,
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    // Calibration: grow the per-sample iteration count until one sample
    // takes at least TARGET_SAMPLE (or a single iteration exceeds it).
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    loop {
        f(&mut b);
        if b.elapsed >= TARGET_SAMPLE || b.iters >= 1 << 30 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            16
        } else {
            (TARGET_SAMPLE.as_secs_f64() / b.elapsed.as_secs_f64()).ceil() as u64
        };
        b.iters = (b.iters * grow.clamp(2, 16)).min(1 << 30);
    }
    let iters = b.iters;
    let mut per_iter: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            f(&mut b);
            b.elapsed.as_secs_f64() * 1e9 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let median = per_iter[per_iter.len() / 2];
    println!("criterion-shim: {name} {median:.1} ns/iter ({iters} iters x {samples} samples)");
}

impl Criterion {
    /// Measures `f` and prints the median time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl AsRef<str>, f: F) {
        run_bench(name.as_ref(), self.sample_size, f);
    }

    /// Opens a named group; names are reported as `group/function`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLES,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measures `f` under `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl AsRef<str>, f: F) {
        run_bench(
            &format!("{}/{}", self.name, name.as_ref()),
            self.sample_size,
            f,
        );
    }

    /// Ends the group (no-op in the shim; kept for API compatibility).
    pub fn finish(self) {}
}

/// Collects benchmark functions into a runnable group, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` from one or more [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
