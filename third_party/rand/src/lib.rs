//! Offline, dependency-free shim for the `rand` crate.
//!
//! Implements exactly the surface the Valley workspace uses —
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and the [`RngExt`]
//! extension trait (`random`, `random_range`, `random_bool`) — with a
//! deterministic SplitMix64 generator. See `third_party/README.md` for why
//! this exists. The stream is stable across platforms and releases: every
//! simulation seed in the repository reproduces bit-identical traces.

#![warn(missing_docs)]

use std::ops::Range;

/// Core trait: a source of uniformly distributed 64-bit values.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64 (Steele et al.),
    /// deterministic and seedable from a `u64`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Types producible by [`RngExt::random`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw(rng: &mut dyn FnMut() -> u64) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn draw(rng: &mut dyn FnMut() -> u64) -> Self {
        rng()
    }
}

impl Standard for u32 {
    #[inline]
    fn draw(rng: &mut dyn FnMut() -> u64) -> Self {
        (rng() >> 32) as u32
    }
}

impl Standard for usize {
    #[inline]
    fn draw(rng: &mut dyn FnMut() -> u64) -> Self {
        rng() as usize
    }
}

impl Standard for bool {
    #[inline]
    fn draw(rng: &mut dyn FnMut() -> u64) -> Self {
        rng() >> 63 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn draw(rng: &mut dyn FnMut() -> u64) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable as [`RngExt::random_range`] bounds.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample(lo: Self, hi: Self, rng: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample(lo: Self, hi: Self, rng: &mut dyn FnMut() -> u64) -> Self {
                assert!(lo < hi, "random_range requires a non-empty range");
                let span = (hi - lo) as u64;
                lo + (rng() % span) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait RngExt: RngCore {
    /// A uniformly distributed value of type `T`.
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::draw(&mut || self.next_u64())
    }

    /// A uniform draw from the half-open `range`.
    #[inline]
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(range.start, range.end, &mut || self.next_u64())
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        let x: f64 = self.random();
        x < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: u64 = StdRng::seed_from_u64(7).random();
        let b: u64 = StdRng::seed_from_u64(7).random();
        let c: u64 = StdRng::seed_from_u64(8).random();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = rng.random_range(0u64..3);
            assert!(y < 3);
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
        let heads = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "suspicious bias: {heads}");
    }
}
